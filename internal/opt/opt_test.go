package opt_test

import (
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/interp"
	"evolvevm/internal/opt"
)

func mustProg(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	p, err := bytecode.Assemble("t", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

// runWith executes prog with fn fnIdx replaced by code, returning result,
// output, and cycles.
func runWith(t *testing.T, prog *bytecode.Program, forms map[int]*bytecode.Function,
	globals map[string]bytecode.Value) (bytecode.Value, []bytecode.Value, int64) {
	t.Helper()
	e := interp.NewEngine(prog)
	base := e.Provider
	codes := map[int]*interp.Code{}
	for idx, f := range forms {
		codes[idx] = interp.NewCode(idx, f, 2, 100) // same cost scale: isolate instruction count
	}
	e.Provider = func(fn int) *interp.Code {
		if c, ok := codes[fn]; ok {
			return c
		}
		return base(fn)
	}
	for k, v := range globals {
		if err := e.SetGlobal(k, v); err != nil {
			t.Fatal(err)
		}
	}
	v, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v, e.Output, e.Cycles
}

// checkEquivalent optimizes every function at every level and checks that
// results and outputs match the baseline, and that cycle counts do not
// increase.
func checkEquivalent(t *testing.T, src string, globals map[string]bytecode.Value) {
	t.Helper()
	prog := mustProg(t, src)
	baseV, baseOut, baseCycles := runWith(t, prog, nil, globals)

	for level := 0; level <= 2; level++ {
		forms := map[int]*bytecode.Function{}
		for idx := range prog.Funcs {
			g, _, err := opt.Optimize(prog, idx, level)
			if err != nil {
				t.Fatalf("Optimize level %d %s: %v", level, prog.Funcs[idx].Name, err)
			}
			forms[idx] = g
		}
		v, out, cycles := runWith(t, prog, forms, globals)
		if !v.Equal(baseV) {
			t.Errorf("level %d: result %v, baseline %v", level, v, baseV)
		}
		if len(out) != len(baseOut) {
			t.Errorf("level %d: output len %d, baseline %d", level, len(out), len(baseOut))
		} else {
			for i := range out {
				if !out[i].Equal(baseOut[i]) {
					t.Errorf("level %d: output[%d] = %v, baseline %v", level, i, out[i], baseOut[i])
				}
			}
		}
		// A small constant slack covers LICM preheaders executed ahead of
		// zero-trip loops; any real regression is far larger.
		if cycles > baseCycles+200 {
			t.Errorf("level %d: cycles %d > baseline %d", level, cycles, baseCycles)
		}
	}
}

const loopProg = `
global n
global out
func main() locals i sum t
  const 0
  store sum
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load sum
  load i
  const 3
  imul
  const 0
  iadd
  iadd
  store sum
  load i
  const 1
  iadd
  store i
  jmp loop
done:
  load sum
  gstore out
  load sum
  ret
end
`

func TestEquivalenceLoop(t *testing.T) {
	checkEquivalent(t, loopProg, map[string]bytecode.Value{"n": bytecode.Int(500)})
}

const callProg = `
global n
func main() locals i acc
  const 0
  store acc
  const 1
  store i
loop:
  load i
  gload n
  igt
  jnz done
  load acc
  load i
  call sq 1
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
func sq(x)
  load x
  load x
  imul
  ret
end
`

func TestEquivalenceCalls(t *testing.T) {
	checkEquivalent(t, callProg, map[string]bytecode.Value{"n": bytecode.Int(200)})
}

const arrayProg = `
global n
func main() locals a i s
  gload n
  newarr
  store a
  const 0
  store i
fill:
  load i
  load a
  alen
  ige
  jnz sum
  load a
  load i
  load i
  const 7
  imul
  astore
  iinc i 1
  jmp fill
sum:
  const 0
  store s
  const 0
  store i
loop:
  load i
  load a
  alen
  ige
  jnz done
  load s
  load a
  load i
  aload
  iadd
  store s
  iinc i 1
  jmp loop
done:
  load s
  print
  load s
  ret
end
`

func TestEquivalenceArrays(t *testing.T) {
	checkEquivalent(t, arrayProg, map[string]bytecode.Value{"n": bytecode.Int(300)})
}

const floatProg = `
global n
func main() locals i x acc
  fconst 0
  store acc
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load i
  i2f
  fconst 1
  fmul
  fsqrt
  store x
  load acc
  load x
  fadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  f2i
  ret
end
`

func TestEquivalenceFloat(t *testing.T) {
	checkEquivalent(t, floatProg, map[string]bytecode.Value{"n": bytecode.Int(400)})
}

const branchyProg = `
global n
func main() locals i odd even
  const 0
  store odd
  const 0
  store even
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load i
  const 2
  imod
  jz iseven
  iinc odd 1
  jmp next
iseven:
  iinc even 1
next:
  iinc i 1
  jmp loop
done:
  load odd
  const 1000
  imul
  load even
  iadd
  ret
end
`

func TestEquivalenceBranches(t *testing.T) {
	checkEquivalent(t, branchyProg, map[string]bytecode.Value{"n": bytecode.Int(333)})
}

func TestEquivalenceRecursion(t *testing.T) {
	src := `
func main()
  const 12
  call fib 1
  ret
end
func fib(n)
  load n
  const 2
  ilt
  jz rec
  load n
  ret
rec:
  load n
  const 1
  isub
  call fib 1
  load n
  const 2
  isub
  call fib 1
  iadd
  ret
end
`
	checkEquivalent(t, src, nil)
}

func TestPeepholeFoldsConstants(t *testing.T) {
	prog := mustProg(t, `
func main() locals x
  const 2
  const 3
  iadd
  const 4
  imul
  ret
end
`)
	f, _, err := opt.Optimize(prog, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Whole expression folds to a single push + ret.
	if len(f.Code) != 2 {
		t.Errorf("folded code length = %d, want 2:\n%s", len(f.Code),
			bytecode.Disassemble(prog, f))
	}
	if f.Code[0].Op != bytecode.IPUSH || f.Code[0].A != 20 {
		t.Errorf("folded to %v, want ipush 20", f.Code[0])
	}
}

func TestPeepholeSynthesizesIinc(t *testing.T) {
	prog := mustProg(t, loopProg)
	f, _, err := opt.Optimize(prog, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range f.Code {
		if in.Op == bytecode.IINC && in.B == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no iinc synthesized:\n%s", bytecode.Disassemble(prog, f))
	}
}

func TestPeepholeStrengthReduction(t *testing.T) {
	prog := mustProg(t, `
func main() locals q
  const 0
  call byeight 1
  ret
end
func byeight(x)
  load x
  const 8
  imul
  ret
end
`)
	idx, _ := prog.FuncIndex("byeight")
	f, _, err := opt.Optimize(prog, idx, 0)
	if err != nil {
		t.Fatal(err)
	}
	hasShift := false
	for _, in := range f.Code {
		if in.Op == bytecode.ISHL {
			hasShift = true
		}
		if in.Op == bytecode.IMUL {
			t.Errorf("imul by 8 not strength-reduced:\n%s", bytecode.Disassemble(prog, f))
		}
	}
	if !hasShift {
		t.Errorf("no ishl emitted:\n%s", bytecode.Disassemble(prog, f))
	}
}

func TestInlineExpandsSmallLeaf(t *testing.T) {
	prog := mustProg(t, callProg)
	mainIdx, _ := prog.FuncIndex("main")
	f, _, err := opt.Optimize(prog, mainIdx, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range f.Code {
		if in.Op == bytecode.CALL {
			t.Errorf("call to sq survived inlining:\n%s", bytecode.Disassemble(prog, f))
		}
	}
}

func TestLICMHoistsBoundComputation(t *testing.T) {
	prog := mustProg(t, arrayProg)
	f, _, err := opt.Optimize(prog, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	alens := 0
	for _, in := range f.Code {
		if in.Op == bytecode.ALEN {
			alens++
		}
	}
	// Two loops each computed alen per iteration; after LICM the loops
	// should load a hoisted temp, leaving only the preheader ALENs.
	if alens != 2 {
		t.Errorf("alen count = %d, want 2 (hoisted):\n%s", alens,
			bytecode.Disassemble(prog, f))
	}
}

func TestLevelsMonotonicallyFaster(t *testing.T) {
	prog := mustProg(t, arrayProg)
	globals := map[string]bytecode.Value{"n": bytecode.Int(500)}

	cycles := make([]int64, 0, 4)
	_, _, base := runWith(t, prog, nil, globals)
	cycles = append(cycles, base)
	for level := 0; level <= 2; level++ {
		forms := map[int]*bytecode.Function{}
		for idx := range prog.Funcs {
			g, _, err := opt.Optimize(prog, idx, level)
			if err != nil {
				t.Fatal(err)
			}
			forms[idx] = g
		}
		_, _, c := runWith(t, prog, forms, globals)
		cycles = append(cycles, c)
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i] > cycles[i-1] {
			t.Errorf("level %d cycles %d > level %d cycles %d (same cost scale)",
				i-1, cycles[i], i-2, cycles[i-1])
		}
	}
}

func TestOptimizeCostGrowsWithLevel(t *testing.T) {
	prog := mustProg(t, arrayProg)
	var prev int64
	for level := 0; level <= 2; level++ {
		_, res, err := opt.Optimize(prog, 0, level)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles <= prev {
			t.Errorf("level %d compile cycles %d <= level %d cycles %d",
				level, res.Cycles, level-1, prev)
		}
		prev = res.Cycles
	}
}

func TestDeadStoreEliminated(t *testing.T) {
	prog := mustProg(t, `
func main() locals dead live
  const 41
  store dead
  const 1
  store live
  load live
  const 41
  iadd
  ret
end
`)
	f, _, err := opt.Optimize(prog, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ := runWith(t, prog, map[int]*bytecode.Function{0: f}, nil)
	if v.I != 42 {
		t.Fatalf("result = %v, want 42", v)
	}
	for _, in := range f.Code {
		if in.Op == bytecode.STORE && int(in.A) < len(f.LocalNames) &&
			f.LocalNames[in.A] == "dead" {
			t.Errorf("dead store survived:\n%s", bytecode.Disassemble(prog, f))
		}
	}
}

func TestUnreachableCodeRemoved(t *testing.T) {
	prog := mustProg(t, `
func main() locals x
  const 1
  jnz yes
  const 111
  print
yes:
  const 5
  ret
end
`)
	f, _, err := opt.Optimize(prog, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range f.Code {
		if in.Op == bytecode.PRINT {
			t.Errorf("unreachable print survived (const branch not folded):\n%s",
				bytecode.Disassemble(prog, f))
		}
	}
	v, _, _ := runWith(t, prog, map[int]*bytecode.Function{0: f}, nil)
	if v.I != 5 {
		t.Errorf("result = %v, want 5", v)
	}
}

func TestUnrollPreservesTripCounts(t *testing.T) {
	// Odd and even trip counts, including zero.
	for _, n := range []int64{0, 1, 2, 3, 7, 100, 101} {
		checkEquivalent(t, loopProg, map[string]bytecode.Value{"n": bytecode.Int(n)})
	}
}

func TestConstPropThroughLocals(t *testing.T) {
	prog := mustProg(t, `
func main() locals x y
  const 6
  store x
  load x
  const 7
  imul
  store y
  load y
  ret
end
`)
	f := prog.Funcs[0].Clone()
	if !opt.ConstProp(prog, f) {
		t.Fatal("ConstProp reported no change")
	}
	// After propagation and a couple of cleanup rounds (as in the real
	// pipeline) the function collapses to a single push of 42.
	for i := 0; i < 3; i++ {
		opt.Peephole(prog, f)
		opt.DeadCode(prog, f)
	}
	if len(f.Code) != 2 || f.Code[0].Op != bytecode.IPUSH || f.Code[0].A != 42 {
		t.Errorf("did not collapse to ipush 42:\n%s", bytecode.Disassemble(prog, f))
	}
}

func TestConstPropTracksIinc(t *testing.T) {
	prog := mustProg(t, `
func main() locals x
  const 10
  store x
  iinc x 5
  load x
  ret
end
`)
	f := prog.Funcs[0].Clone()
	opt.ConstProp(prog, f)
	for i := 0; i < 3; i++ {
		opt.Peephole(prog, f)
		opt.DeadCode(prog, f)
	}
	if len(f.Code) != 2 || f.Code[0].A != 15 {
		t.Errorf("iinc not tracked:\n%s", bytecode.Disassemble(prog, f))
	}
}

func TestConstPropStopsAtBlockBoundary(t *testing.T) {
	// x is constant only on one path; the merged block must not assume it.
	prog := mustProg(t, `
global g
func main() locals x
  const 1
  store x
  gload g
  jz skip
  const 2
  store x
skip:
  load x
  ret
end
`)
	f := prog.Funcs[0].Clone()
	opt.ConstProp(prog, f)
	// The final "load x" starts a block (jump target): it must survive.
	found := false
	for _, in := range f.Code {
		if in.Op == bytecode.LOAD {
			found = true
		}
	}
	if !found {
		t.Errorf("cross-block load folded unsoundly:\n%s", bytecode.Disassemble(prog, f))
	}
	checkEquivalent(t, `
global g
func main() locals x
  const 1
  store x
  gload g
  jz skip
  const 2
  store x
skip:
  load x
  ret
end
`, map[string]bytecode.Value{"g": bytecode.Int(1)})
}

func TestInlineNonLeafCascades(t *testing.T) {
	// main -> outer -> inner: both small, so O1 should flatten the
	// whole chain into main.
	src := `
global n
func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load acc
  load i
  call outer 1
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
func outer(x)
  load x
  call inner 1
  const 1
  iadd
  ret
end
func inner(x)
  load x
  load x
  imul
  ret
end
`
	checkEquivalent(t, src, map[string]bytecode.Value{"n": bytecode.Int(100)})
	prog := mustProg(t, src)
	f, _, err := opt.Optimize(prog, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range f.Code {
		if in.Op == bytecode.CALL {
			t.Errorf("call survived cascaded inlining:\n%s", bytecode.Disassemble(prog, f))
		}
	}
}

func TestInlineMutualRecursionBounded(t *testing.T) {
	// even/odd mutual recursion: inlining must terminate under the
	// per-callee cap and stay semantically correct.
	src := `
func main() locals r
  const 15
  call even 1
  const 10
  imul
  const 14
  call odd 1
  iadd
  ret
end
func even(x)
  load x
  jnz rec
  const 1
  ret
rec:
  load x
  const 1
  isub
  call odd 1
  ret
end
func odd(x)
  load x
  jnz rec
  const 0
  ret
rec:
  load x
  const 1
  isub
  call even 1
  ret
end
`
	checkEquivalent(t, src, nil)
	prog := mustProg(t, src)
	f, _, err := opt.Optimize(prog, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Code) >= opt.InlineMaxCaller {
		t.Errorf("mutual recursion blew the inline cap: %d instrs", len(f.Code))
	}
}

func TestInlineRefusesDirectRecursion(t *testing.T) {
	prog := mustProg(t, `
func main()
  const 6
  call fact 1
  ret
end
func fact(n)
  load n
  const 2
  ilt
  jnz base
  load n
  load n
  const 1
  isub
  call fact 1
  imul
  ret
base:
  const 1
  ret
end
`)
	factIdx, _ := prog.FuncIndex("fact")
	if opt.Inlinable(prog, prog.Funcs[factIdx]) {
		t.Error("directly recursive function considered inlinable")
	}
	checkEquivalent(t, `
func main()
  const 6
  call fact 1
  ret
end
func fact(n)
  load n
  const 2
  ilt
  jnz base
  load n
  load n
  const 1
  isub
  call fact 1
  imul
  ret
base:
  const 1
  ret
end
`, nil)
}
