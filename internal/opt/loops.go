package opt

import "evolvevm/internal/bytecode"

// Loop is one natural single-entry loop of an instruction sequence: a
// region [Head, End] whose last instruction is a backward jump to Head
// and whose interior is never entered from outside the region. This is
// the loop shape every loop-aware consumer in the system agrees on:
// LICM hoists out of it, Unroll duplicates its body, and the interp
// register-trace converter (internal/interp/trace.go) anchors its
// hot-loop traces at Head.
type Loop struct {
	Head int // pc of the loop header (the back-edge target)
	End  int // pc of the backward jump that closes the loop
}

// Loops returns the single-entry backward-jump regions of code,
// innermost-back-edge first (the iteration order LICM relies on). It is
// a pure function of the instruction stream, so callers outside the
// optimizer may use it on any executable form.
func Loops(code []bytecode.Instr) []Loop {
	var loops []Loop
	for e, in := range code {
		if !in.Op.IsJump() || int(in.A) > e {
			continue
		}
		h := int(in.A)
		ok := true
		for pc, jn := range code {
			if pc >= h && pc <= e {
				continue
			}
			if jn.Op.IsJump() && int(jn.A) > h && int(jn.A) <= e {
				ok = false
				break
			}
		}
		if ok {
			loops = append(loops, Loop{Head: h, End: e})
		}
	}
	return loops
}
