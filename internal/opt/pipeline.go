package opt

import (
	"fmt"

	"evolvevm/internal/bytecode"
)

// Pass is a single optimization over one function. Apply rewrites f in
// place and reports whether anything changed.
type Pass struct {
	Name string
	// CostPerInstr is the compile-cycle charge per input instruction for
	// one application of the pass, used by the JIT cost model.
	CostPerInstr int64
	Apply        func(p *bytecode.Program, f *bytecode.Function) bool
}

// pipelines holds the pass sequence of each optimization level (0–2),
// built once: Pipeline sits on the cost-benefit model's estimation path,
// which every controller consults after every run, so rebuilding the
// slices per call was a measurable steady-state allocation source.
// Higher levels strictly extend lower ones, so they cost more compile
// cycles and produce code that is at least as optimized. Callers must
// treat the returned slices as read-only.
var pipelines = func() [3][]Pass {
	o0 := []Pass{
		{Name: "peephole", CostPerInstr: 14, Apply: Peephole},
	}
	o1 := append(o0[:len(o0):len(o0)],
		Pass{Name: "inline", CostPerInstr: 22, Apply: Inline},
		Pass{Name: "constprop", CostPerInstr: 12, Apply: ConstProp},
		Pass{Name: "dce", CostPerInstr: 10, Apply: DeadCode},
		Pass{Name: "peephole2", CostPerInstr: 14, Apply: Peephole},
	)
	o2 := append(o1[:len(o1):len(o1)],
		Pass{Name: "licm", CostPerInstr: 30, Apply: LICM},
		Pass{Name: "unroll", CostPerInstr: 26, Apply: Unroll},
		Pass{Name: "peephole3", CostPerInstr: 14, Apply: Peephole},
		Pass{Name: "dce2", CostPerInstr: 10, Apply: DeadCode},
		// dce can expose push/pop pairs (dead stores become pops); one
		// last cheap peephole mops them up.
		Pass{Name: "peephole4", CostPerInstr: 14, Apply: Peephole},
	)
	return [3][]Pass{o0, o1, o2}
}()

// pipelineRates[level] is the summed CostPerInstr of the level's passes —
// the closed form of the estimation loop over Pipeline(level).
var pipelineRates = func() [3]int64 {
	var r [3]int64
	for i, passes := range pipelines {
		for _, p := range passes {
			r[i] += p.CostPerInstr
		}
	}
	return r
}()

// Pipeline returns the pass sequence of an optimization level (0–2). The
// slice is shared and must not be modified.
func Pipeline(level int) []Pass {
	switch {
	case level <= 0:
		return pipelines[0]
	case level == 1:
		return pipelines[1]
	default:
		return pipelines[2]
	}
}

// PipelineRate returns the summed per-instruction compile-cycle rate of a
// level's passes, allocation-free (the cost model's estimator calls this
// after every run for every function × level).
func PipelineRate(level int) int64 {
	switch {
	case level <= 0:
		return pipelineRates[0]
	case level == 1:
		return pipelineRates[1]
	default:
		return pipelineRates[2]
	}
}

// Result reports what an Optimize call did.
type Result struct {
	Level     int
	InInstrs  int
	OutInstrs int
	Cycles    int64 // compile cycles charged by the cost model
	PassesRun []string
	PassesHit []string // passes that changed the code
}

// Optimize clones fn from prog, runs the pipeline for the level over it,
// verifies the result, and returns the optimized function with compile
// cost accounting. The input program and function are not modified.
func Optimize(prog *bytecode.Program, fnIdx, level int) (*bytecode.Function, Result, error) {
	if fnIdx < 0 || fnIdx >= len(prog.Funcs) {
		return nil, Result{}, fmt.Errorf("opt: function index %d out of range", fnIdx)
	}
	src := prog.Funcs[fnIdx]
	f := src.Clone()
	res := Result{Level: level, InInstrs: len(src.Code)}

	// Base cost models parsing/IR construction, independent of passes.
	res.Cycles = 400 + int64(len(src.Code))*8

	for _, pass := range Pipeline(level) {
		res.Cycles += int64(len(f.Code)) * pass.CostPerInstr
		res.PassesRun = append(res.PassesRun, pass.Name)
		if pass.Apply(prog, f) {
			res.PassesHit = append(res.PassesHit, pass.Name)
		}
	}
	res.OutInstrs = len(f.Code)

	if err := bytecode.VerifyFunc(prog, f); err != nil {
		return nil, res, fmt.Errorf("opt: level %d broke %s: %w", level, src.Name, err)
	}
	return f, res, nil
}
