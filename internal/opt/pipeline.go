package opt

import (
	"fmt"

	"evolvevm/internal/bytecode"
)

// Pass is a single optimization over one function. Apply rewrites f in
// place and reports whether anything changed.
type Pass struct {
	Name string
	// CostPerInstr is the compile-cycle charge per input instruction for
	// one application of the pass, used by the JIT cost model.
	CostPerInstr int64
	Apply        func(p *bytecode.Program, f *bytecode.Function) bool
}

// Pipeline returns the pass sequence of an optimization level (0–2).
// Higher levels strictly extend lower ones, so they cost more compile
// cycles and produce code that is at least as optimized.
func Pipeline(level int) []Pass {
	o0 := []Pass{
		{Name: "peephole", CostPerInstr: 14, Apply: Peephole},
	}
	o1 := append(o0,
		Pass{Name: "inline", CostPerInstr: 22, Apply: Inline},
		Pass{Name: "constprop", CostPerInstr: 12, Apply: ConstProp},
		Pass{Name: "dce", CostPerInstr: 10, Apply: DeadCode},
		Pass{Name: "peephole2", CostPerInstr: 14, Apply: Peephole},
	)
	o2 := append(o1,
		Pass{Name: "licm", CostPerInstr: 30, Apply: LICM},
		Pass{Name: "unroll", CostPerInstr: 26, Apply: Unroll},
		Pass{Name: "peephole3", CostPerInstr: 14, Apply: Peephole},
		Pass{Name: "dce2", CostPerInstr: 10, Apply: DeadCode},
		// dce can expose push/pop pairs (dead stores become pops); one
		// last cheap peephole mops them up.
		Pass{Name: "peephole4", CostPerInstr: 14, Apply: Peephole},
	)
	switch {
	case level <= 0:
		return o0
	case level == 1:
		return o1
	default:
		return o2
	}
}

// Result reports what an Optimize call did.
type Result struct {
	Level     int
	InInstrs  int
	OutInstrs int
	Cycles    int64 // compile cycles charged by the cost model
	PassesRun []string
	PassesHit []string // passes that changed the code
}

// Optimize clones fn from prog, runs the pipeline for the level over it,
// verifies the result, and returns the optimized function with compile
// cost accounting. The input program and function are not modified.
func Optimize(prog *bytecode.Program, fnIdx, level int) (*bytecode.Function, Result, error) {
	if fnIdx < 0 || fnIdx >= len(prog.Funcs) {
		return nil, Result{}, fmt.Errorf("opt: function index %d out of range", fnIdx)
	}
	src := prog.Funcs[fnIdx]
	f := src.Clone()
	res := Result{Level: level, InInstrs: len(src.Code)}

	// Base cost models parsing/IR construction, independent of passes.
	res.Cycles = 400 + int64(len(src.Code))*8

	for _, pass := range Pipeline(level) {
		res.Cycles += int64(len(f.Code)) * pass.CostPerInstr
		res.PassesRun = append(res.PassesRun, pass.Name)
		if pass.Apply(prog, f) {
			res.PassesHit = append(res.PassesHit, pass.Name)
		}
	}
	res.OutInstrs = len(f.Code)

	if err := bytecode.VerifyFunc(prog, f); err != nil {
		return nil, res, fmt.Errorf("opt: level %d broke %s: %w", level, src.Name, err)
	}
	return f, res, nil
}
