package rep

import (
	"encoding/json"
	"fmt"
	"io"

	"evolvevm/internal/bytecode"
)

// The repository's persistent state is its raw work history: plans are
// derived on demand from the history and the current compiler cost
// model, so they are never stored.

type persistState struct {
	Program string    `json:"program"`
	Work    [][]int64 `json:"work"`
}

// Save writes the repository's recorded history as JSON.
func (r *Repository) Save(w io.Writer) error {
	st := persistState{Program: r.prog.Name, Work: r.workHist}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(st)
}

// LoadRepository restores a repository saved by Save, binding it to prog.
func LoadRepository(prog *bytecode.Program, rd io.Reader) (*Repository, error) {
	var st persistState
	if err := json.NewDecoder(rd).Decode(&st); err != nil {
		return nil, fmt.Errorf("rep: load: %w", err)
	}
	if st.Program != prog.Name {
		return nil, fmt.Errorf("rep: state is for program %q, not %q", st.Program, prog.Name)
	}
	nf := len(prog.Funcs)
	for i, run := range st.Work {
		if len(run) != nf {
			return nil, fmt.Errorf("rep: run %d records %d functions, program has %d", i, len(run), nf)
		}
	}
	repo := NewRepository(prog)
	repo.workHist = st.Work
	return repo, nil
}
