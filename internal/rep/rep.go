// Package rep implements the cross-run profile-repository optimizer of
// Arnold, Welc and Rajan (OOPSLA 2005) — the paper's "Rep" comparison
// baseline. The repository accumulates profiles over past runs and derives,
// per method, a compilation plan of ⟨sample-count, level⟩ pairs that
// maximizes the *average* performance over the history. Unlike the
// evolvable VM it is not input-specific and applies its plan
// unconditionally, from the very first history run.
package rep

import (
	"evolvevm/internal/bytecode"
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
)

// PlanEntry says: when the sampler sees the Samples-th sample of the
// method, recompile it at Level.
type PlanEntry struct {
	Samples int64
	Level   int
}

// Plan is a per-method compilation plan, ordered by ascending Samples.
type Plan map[int][]PlanEntry

// Repository is the persistent cross-run profile store for one program.
type Repository struct {
	prog *bytecode.Program
	// workHist[r][fn] is the baseline-equivalent work fn performed in
	// recorded run r.
	workHist [][]int64

	// Plan memoization: BuildPlan is a pure function of the history, the
	// compiler's tier table, and the sample stride, but Controller used to
	// rebuild it on every run — an O(funcs × triggers × levels × history)
	// rescan per run. The cache is invalidated by construction when any
	// input changes (a Record grows the history; a different compiler
	// config or stride misses the key).
	cached       Plan
	cachedRuns   int
	cachedCfg    jit.Config
	cachedStride int64
}

// NewRepository returns an empty repository bound to prog.
func NewRepository(prog *bytecode.Program) *Repository {
	return &Repository{prog: prog}
}

// Runs returns how many runs the repository has recorded.
func (r *Repository) Runs() int { return len(r.workHist) }

// Record adds a finished run's profile to the repository.
func (r *Repository) Record(m *vm.Machine) {
	r.RecordWork(m.Engine.Work)
}

// RecordWork adds one run's per-function baseline-work profile directly.
// Work profiles are level- and controller-independent (the execution path
// is a pure function of program and input), so a profile measured under
// any scenario — or replayed from a deterministic-outcome cache — records
// identically to one observed live. The slice is copied.
func (r *Repository) RecordWork(work []int64) {
	r.workHist = append(r.workHist, append([]int64(nil), work...))
}

// triggerGrid is the candidate sample-count triggers a plan may use.
var triggerGrid = []int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256}

// BuildPlan derives the compilation plan from the recorded history. For
// each method it selects the ⟨trigger, level⟩ pair minimizing the
// *expected total time over the history distribution* — Arnold et al.'s
// criterion of maximizing average performance of the past runs. Short
// runs never reach a high trigger, so a well-chosen trigger lets them
// self-select out of an expensive compile; that single compromise plan is
// exactly what the evolvable VM's input-specific prediction improves on.
func (r *Repository) BuildPlan(compiler *jit.Compiler, sampleStride int64) Plan {
	plan := make(Plan)
	if len(r.workHist) == 0 {
		return plan
	}
	nf := len(r.prog.Funcs)
	for fn := 0; fn < nf; fn++ {
		// Expected time with no plan: the baseline work itself.
		var baseTotal int64
		works := make([]int64, 0, len(r.workHist))
		for _, run := range r.workHist {
			works = append(works, run[fn])
			baseTotal += run[fn]
		}
		if baseTotal == 0 {
			continue
		}
		bestTotal := baseTotal
		var bestK int64
		bestL := jit.MinLevel
		for _, k := range triggerGrid {
			kc := k * sampleStride
			for l := 0; l <= jit.MaxLevel; l++ {
				compile := compiler.EstimateCompileCycles(fn, l)
				speed := compiler.Speedup(l)
				var total int64
				for _, w := range works {
					if w <= kc {
						total += w // trigger never fires
						continue
					}
					total += kc + compile + int64(float64(w-kc)/speed)
				}
				if total < bestTotal {
					bestTotal, bestK, bestL = total, k, l
				}
			}
		}
		if bestL > jit.MinLevel {
			plan[fn] = []PlanEntry{{Samples: bestK, Level: bestL}}
		}
	}
	return plan
}

// Controller returns the vm.Controller executing the repository's current
// plan for one run and recording the run back into the repository when it
// finishes. planCost cycles are charged at run start for loading the plan.
// The plan is memoized across runs until the history, tier table, or
// stride changes, so steady-state Rep runs skip the BuildPlan rescan.
func (r *Repository) Controller(compiler *jit.Compiler, sampleStride int64) *Controller {
	cfg := compiler.Config()
	if r.cached == nil || r.cachedRuns != len(r.workHist) ||
		r.cachedCfg != cfg || r.cachedStride != sampleStride {
		r.cached = r.BuildPlan(compiler, sampleStride)
		r.cachedRuns, r.cachedCfg, r.cachedStride = len(r.workHist), cfg, sampleStride
	}
	return &Controller{repo: r, plan: r.cached}
}

// Controller executes a repository plan.
type Controller struct {
	repo *Repository
	plan Plan
}

var _ vm.Controller = (*Controller)(nil)

// Name implements vm.Controller.
func (c *Controller) Name() string { return "rep" }

// OnRunStart charges a small plan-lookup overhead.
func (c *Controller) OnRunStart(m *vm.Machine) {
	m.AddOverhead(40 * int64(len(c.plan)))
}

// OnInvoke implements vm.Controller (plans are sample-driven).
func (c *Controller) OnInvoke(*vm.Machine, int, int64) {}

// OnSample fires plan entries whose sample trigger has been reached.
func (c *Controller) OnSample(m *vm.Machine, fnIdx int) {
	entries := c.plan[fnIdx]
	for _, e := range entries {
		if m.Samples[fnIdx] >= e.Samples && m.Level(fnIdx) < e.Level {
			_ = m.RequestCompile(fnIdx, e.Level)
		}
	}
}

// OnRunEnd records the finished run into the repository.
func (c *Controller) OnRunEnd(m *vm.Machine) {
	c.repo.Record(m)
}
