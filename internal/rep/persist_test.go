package rep

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"evolvevm/internal/bytecode"
)

// histRow builds one work-history row sized to the program.
func histRow(prog *bytecode.Program, base int64) []int64 {
	row := make([]int64, len(prog.Funcs))
	for i := range row {
		row[i] = base + int64(i)*100
	}
	return row
}

func TestRepositoryPersistenceRoundTrip(t *testing.T) {
	prog := testProg(t)
	r := NewRepository(prog)
	r.workHist = [][]int64{histRow(prog, 100), histRow(prog, 5000), histRow(prog, 80)}

	var blob bytes.Buffer
	if err := r.Save(&blob); err != nil {
		t.Fatal(err)
	}
	r2, err := LoadRepository(prog, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2.workHist, r.workHist) {
		t.Errorf("history diverged: %v vs %v", r2.workHist, r.workHist)
	}
	if r2.Runs() != r.Runs() {
		t.Errorf("runs = %d, want %d", r2.Runs(), r.Runs())
	}

	// Save -> load -> save is the identity.
	var resaved bytes.Buffer
	if err := r2.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob.Bytes(), resaved.Bytes()) {
		t.Error("repository save -> load -> save is not the identity")
	}
}

func TestLoadRepositoryRejectsMismatches(t *testing.T) {
	prog := testProg(t)
	r := NewRepository(prog)
	r.workHist = [][]int64{histRow(prog, 1)}
	var blob bytes.Buffer
	if err := r.Save(&blob); err != nil {
		t.Fatal(err)
	}

	other, err := bytecode.Assemble("otherprog", "func main()\n const 1\n ret\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRepository(other, bytes.NewReader(blob.Bytes())); err == nil {
		t.Error("state loaded into wrong program")
	}
	// A history row with the wrong function count is rejected.
	if _, err := LoadRepository(prog,
		strings.NewReader(`{"program":"reptest","work":[[1]]}`)); err == nil && len(prog.Funcs) != 1 {
		t.Error("malformed history accepted")
	}
	if _, err := LoadRepository(prog, strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}
