package rep

import (
	"testing"

	"evolvevm/internal/aos"
	"evolvevm/internal/bytecode"
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
)

const workSrc = `
global n
func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  const 60
  ige
  jnz done
  load acc
  call kernel 0
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
func kernel() locals j acc
  const 0
  store acc
  const 0
  store j
loop:
  load j
  gload n
  ige
  jnz done
  load acc
  load j
  iadd
  store acc
  iinc j 1
  jmp loop
done:
  load acc
  ret
end
`

func testProg(t *testing.T) *bytecode.Program {
	t.Helper()
	p, err := bytecode.Assemble("reptest", workSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runWith(t *testing.T, p *bytecode.Program, ctrl vm.Controller, n int64) *vm.Machine {
	t.Helper()
	m := vm.New(p, jit.DefaultConfig(), ctrl)
	if err := m.Engine.SetGlobal("n", bytecode.Int(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEmptyRepositoryEmptyPlan(t *testing.T) {
	p := testProg(t)
	repo := NewRepository(p)
	compiler := jit.NewCompiler(p, jit.DefaultConfig())
	if plan := repo.BuildPlan(compiler, 20000); len(plan) != 0 {
		t.Errorf("empty repository produced plan %v", plan)
	}
}

func TestRecordAndPlanHotMethod(t *testing.T) {
	p := testProg(t)
	repo := NewRepository(p)
	for i := 0; i < 4; i++ {
		m := runWith(t, p, vm.NullController{}, 5000)
		repo.Record(m)
	}
	if repo.Runs() != 4 {
		t.Fatalf("Runs = %d, want 4", repo.Runs())
	}
	compiler := jit.NewCompiler(p, jit.DefaultConfig())
	plan := repo.BuildPlan(compiler, 20000)
	kernelIdx, _ := p.FuncIndex("kernel")
	entries := plan[kernelIdx]
	if len(entries) == 0 {
		t.Fatal("no plan for the hot kernel")
	}
	if entries[0].Level < 1 {
		t.Errorf("plan level %d for heavy uniform history, want >= 1", entries[0].Level)
	}
	if entries[0].Samples < 1 {
		t.Errorf("bad trigger %d", entries[0].Samples)
	}
}

func TestPlanSelfSelectsOnBimodalHistory(t *testing.T) {
	// Tiny runs (few samples) mixed with huge runs: the average-optimal
	// plan must either trigger late enough to skip the tiny runs or be
	// worth its cost on the mixture. Here we check the plan's expected
	// cost over the history beats the no-plan baseline — the criterion
	// BuildPlan optimizes.
	p := testProg(t)
	repo := NewRepository(p)
	for i := 0; i < 6; i++ {
		repo.Record(runWith(t, p, vm.NullController{}, 20))
		repo.Record(runWith(t, p, vm.NullController{}, 6000))
	}
	compiler := jit.NewCompiler(p, jit.DefaultConfig())
	plan := repo.BuildPlan(compiler, 20000)
	kernelIdx, _ := p.FuncIndex("kernel")
	if len(plan[kernelIdx]) == 0 {
		t.Fatal("no plan despite heavy runs in history")
	}
}

func TestPlanSkipsColdMethods(t *testing.T) {
	p := testProg(t)
	repo := NewRepository(p)
	repo.Record(runWith(t, p, vm.NullController{}, 2))
	compiler := jit.NewCompiler(p, jit.DefaultConfig())
	plan := repo.BuildPlan(compiler, 20000)
	if len(plan) != 0 {
		t.Errorf("plan %v from a tiny-run-only history, want none", plan)
	}
}

func TestControllerExecutesPlanAndRecords(t *testing.T) {
	p := testProg(t)
	repo := NewRepository(p)
	// Warm up the repository with Default-behaviour profiles.
	for i := 0; i < 3; i++ {
		m := runWith(t, p, aos.NewReactive(), 6000)
		repo.Record(m)
	}
	runsBefore := repo.Runs()

	compilerProbe := jit.NewCompiler(p, jit.DefaultConfig())
	probe := repo.BuildPlan(compilerProbe, 20000)
	kernelIdx, _ := p.FuncIndex("kernel")
	wantLevel := probe[kernelIdx][0].Level

	m := vm.New(p, jit.DefaultConfig(), nil)
	m.Controller = repo.Controller(m.Compiler, m.Engine.SampleStride)
	if err := m.Engine.SetGlobal("n", bytecode.Int(6000)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Level(kernelIdx); got != wantLevel {
		t.Errorf("kernel level %d after rep run, plan says %d", got, wantLevel)
	}
	if repo.Runs() != runsBefore+1 {
		t.Error("controller did not record the finished run")
	}
	if m.OverheadCycles <= 0 {
		t.Error("plan lookup charged no overhead")
	}
}

func TestRepSingleCompileVersusDefaultLadder(t *testing.T) {
	// Rep compiles once to the final level; Default may climb the
	// ladder. Over a long run the rep plan should not be slower.
	p := testProg(t)
	repo := NewRepository(p)
	for i := 0; i < 3; i++ {
		repo.Record(runWith(t, p, aos.NewReactive(), 6000))
	}
	def := runWith(t, p, aos.NewReactive(), 6000)

	m := vm.New(p, jit.DefaultConfig(), nil)
	m.Controller = repo.Controller(m.Compiler, m.Engine.SampleStride)
	if err := m.Engine.SetGlobal("n", bytecode.Int(6000)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.TotalCycles() > def.TotalCycles() {
		t.Errorf("rep run %d cycles > default %d on its home turf",
			m.TotalCycles(), def.TotalCycles())
	}
	if m.Recompilations > def.Recompilations {
		t.Errorf("rep recompiled %d times, default %d — plans should be single-shot",
			m.Recompilations, def.Recompilations)
	}
}
