// Package stats provides the small statistical toolkit used by the
// experiment harness: five-number summaries for boxplots, means,
// correlation, and deterministic helpers.
package stats

import (
	"math"
	"sort"
)

// FiveNum is a boxplot's five-number summary.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summary computes the five-number summary of xs (xs is not modified).
// An empty input returns the zero FiveNum.
func Summary(xs []float64) FiveNum {
	if len(xs) == 0 {
		return FiveNum{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return FiveNum{
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// quantile interpolates the q-quantile of sorted s.
func quantile(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 if any value
// is non-positive or the input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Pearson returns the linear correlation coefficient of two equal-length
// series (0 when undefined).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the rank correlation coefficient of two equal-length
// series (0 when undefined). Ties receive fractional (average) ranks.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(ranks(xs), ranks(ys))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j) / 2
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// MinMax returns the extremes of xs (zeros for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
