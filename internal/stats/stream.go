package stats

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
)

// Named random streams. Experiments used to derive independent RNGs by
// adding magic offsets to the root seed (seed+101, seed+202, ...), which
// silently collides as soon as two sites pick nearby offsets or a user
// passes -seed 101. StreamSeed instead hashes the root seed together
// with a named purpose path, so streams are keyed by *what they are for*
// — (seed, experiment, purpose) — and distinct names give independent
// streams by construction.

// StreamSeed derives the deterministic sub-seed for the stream named by
// parts under the root seed.
func StreamSeed(seed int64, parts ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	for _, p := range parts {
		h.Write([]byte{0}) // separator: ("ab","c") ≠ ("a","bc")
		h.Write([]byte(p))
	}
	return int64(splitmix64(h.Sum64()))
}

// Stream returns a deterministic rand.Rand for the named stream.
func Stream(seed int64, parts ...string) *rand.Rand {
	return rand.New(rand.NewSource(StreamSeed(seed, parts...)))
}

// splitmix64 finalizes the hash so near-identical inputs (seed, seed+1)
// still yield well-separated seeds for rand's LCG-ish sources.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d4a08685acd6bd
	return x ^ (x >> 31)
}
