package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummaryKnownValues(t *testing.T) {
	f := Summary([]float64{1, 2, 3, 4, 5})
	if f.Min != 1 || f.Max != 5 || f.Median != 3 || f.Q1 != 2 || f.Q3 != 4 {
		t.Errorf("Summary = %+v", f)
	}
	f = Summary([]float64{4})
	if f.Min != 4 || f.Max != 4 || f.Median != 4 {
		t.Errorf("singleton Summary = %+v", f)
	}
	if Summary(nil) != (FiveNum{}) {
		t.Error("empty Summary nonzero")
	}
	// Interpolated median for even counts.
	f = Summary([]float64{1, 2, 3, 4})
	if !almost(f.Median, 2.5) {
		t.Errorf("median = %v, want 2.5", f.Median)
	}
}

func TestSummaryDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summary(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summary sorted its input")
	}
}

// Property: min <= q1 <= median <= q3 <= max, and the extremes match the
// input's actual extremes.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summary(clean)
		lo, hi := MinMax(clean)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.Min == lo && s.Max == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeans(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty Mean wrong")
	}
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Error("GeoMean wrong")
	}
	if GeoMean([]float64{1, -1}) != 0 || GeoMean(nil) != 0 {
		t.Error("GeoMean edge cases wrong")
	}
	if !almost(StdDev([]float64{2, 4}), 1) {
		t.Errorf("StdDev = %v, want 1", StdDev([]float64{2, 4}))
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("singleton StdDev wrong")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almost(Pearson(xs, []float64{2, 4, 6, 8}), 1) {
		t.Error("perfect positive correlation != 1")
	}
	if !almost(Pearson(xs, []float64{8, 6, 4, 2}), -1) {
		t.Error("perfect negative correlation != -1")
	}
	if Pearson(xs, []float64{5, 5, 5, 5}) != 0 {
		t.Error("constant series correlation != 0")
	}
	if Pearson(xs, xs[:2]) != 0 {
		t.Error("mismatched lengths != 0")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 5, 20, 100}
	ys := []float64{2, 3, 4, 1000} // monotone but nonlinear
	if !almost(Spearman(xs, ys), 1) {
		t.Errorf("Spearman of monotone series = %v, want 1", Spearman(xs, ys))
	}
	// Ties handled via average ranks.
	if s := Spearman([]float64{1, 1, 2}, []float64{3, 3, 4}); !almost(s, 1) {
		t.Errorf("tied Spearman = %v, want 1", s)
	}
}

// Property: Spearman is invariant under strictly monotone transforms.
func TestQuickSpearmanInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		a := Spearman(xs, ys)
		tx := make([]float64, n)
		for i, x := range xs {
			tx[i] = math.Exp(x) // strictly increasing
		}
		b := Spearman(tx, ys)
		return almost(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRanksAgainstSort(t *testing.T) {
	xs := []float64{30, 10, 20}
	r := ranks(xs)
	want := []float64{2, 0, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("ranks = %v, want %v", r, want)
		}
	}
	// Sanity: ranks of sorted distinct input are 0..n-1.
	s := []float64{1, 2, 3, 4, 5}
	sort.Float64s(s)
	for i, v := range ranks(s) {
		if v != float64(i) {
			t.Errorf("sorted ranks[%d] = %v", i, v)
		}
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Error("empty MinMax nonzero")
	}
}
