package stats

import "testing"

func TestStreamSeedDeterministic(t *testing.T) {
	a := StreamSeed(1, "table1", "order", "mtrt")
	b := StreamSeed(1, "table1", "order", "mtrt")
	if a != b {
		t.Fatalf("same name, different seeds: %d vs %d", a, b)
	}
}

func TestStreamSeedKeyedByEveryPart(t *testing.T) {
	base := StreamSeed(1, "exp", "purpose")
	variants := []int64{
		StreamSeed(2, "exp", "purpose"),     // root seed
		StreamSeed(1, "exp2", "purpose"),    // experiment
		StreamSeed(1, "exp", "purpose2"),    // purpose
		StreamSeed(1, "exp"),                // arity
		StreamSeed(1, "exp", "purpose", ""), // trailing empty part
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with base stream", i)
		}
	}
}

// TestStreamSeedSeparatorsMatter: part boundaries are part of the key, so
// ("ab","c") and ("a","bc") are different streams.
func TestStreamSeedSeparatorsMatter(t *testing.T) {
	if StreamSeed(1, "ab", "c") == StreamSeed(1, "a", "bc") {
		t.Error("part boundaries not separated in the hash")
	}
}

// TestStreamSeedNearbySeedsSeparate guards the reason the magic-offset
// scheme was replaced: seed and seed+101 must not produce related streams
// for any purpose name.
func TestStreamSeedNearbySeedsSeparate(t *testing.T) {
	seen := map[int64]string{}
	for seed := int64(0); seed < 300; seed++ {
		s := StreamSeed(seed, "exp", "order")
		if prev, ok := seen[s]; ok {
			t.Fatalf("seed %d collides with %s", seed, prev)
		}
		seen[s] = "earlier seed"
	}
}

func TestStreamDrawsAreReproducible(t *testing.T) {
	a := Stream(5, "x")
	b := Stream(5, "x")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("identical streams diverged")
		}
	}
	// And a differently named stream draws a different sequence.
	c := Stream(5, "y")
	same := 0
	d := Stream(5, "x")
	for i := 0; i < 100; i++ {
		if c.Int63() == d.Int63() {
			same++
		}
	}
	if same == 100 {
		t.Error("differently named streams drew identical sequences")
	}
}
