package stats

import (
	"math"
	"testing"
)

// TestSummaryEdgeCases pins down the quantile behaviour at the degenerate
// sizes the harness actually produces (a bench with zero or one completed
// run must not panic or emit NaNs into the boxplots).
func TestSummaryEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want FiveNum
	}{
		{"empty", nil, FiveNum{}},
		{"empty-nonnil", []float64{}, FiveNum{}},
		{"one", []float64{3.5}, FiveNum{Min: 3.5, Q1: 3.5, Median: 3.5, Q3: 3.5, Max: 3.5}},
		{"two", []float64{1, 3}, FiveNum{Min: 1, Q1: 1.5, Median: 2, Q3: 2.5, Max: 3}},
		{"constant", []float64{7, 7, 7, 7}, FiveNum{Min: 7, Q1: 7, Median: 7, Q3: 7, Max: 7}},
		// R type-7 quantiles on 0..4: positions are exact indices.
		{"five", []float64{4, 0, 2, 1, 3}, FiveNum{Min: 0, Q1: 1, Median: 2, Q3: 3, Max: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Summary(tc.in)
			if got != tc.want {
				t.Errorf("Summary(%v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestDegenerateInputs(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v, want 0", m)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
	if g := GeoMean([]float64{2, 0, 8}); g != 0 {
		t.Errorf("GeoMean with zero element = %v, want 0", g)
	}
	if g := GeoMean([]float64{4, -1}); g != 0 {
		t.Errorf("GeoMean with negative element = %v, want 0", g)
	}
	if s := StdDev(nil); s != 0 {
		t.Errorf("StdDev(nil) = %v, want 0", s)
	}
	if s := StdDev([]float64{42}); s != 0 {
		t.Errorf("StdDev of one element = %v, want 0", s)
	}
	if s := StdDev([]float64{5, 5, 5}); s != 0 {
		t.Errorf("StdDev of constants = %v, want 0", s)
	}
	// Undefined correlations must come back as 0, never NaN.
	for _, c := range [][2][]float64{
		{nil, nil},
		{{1}, {2}},             // too short
		{{1, 2}, {3}},          // length mismatch
		{{1, 1, 1}, {1, 2, 3}}, // zero variance in xs
		{{4, 5, 6}, {9, 9, 9}}, // zero variance in ys
	} {
		if r := Pearson(c[0], c[1]); r != 0 || math.IsNaN(r) {
			t.Errorf("Pearson(%v, %v) = %v, want 0", c[0], c[1], r)
		}
		if r := Spearman(c[0], c[1]); r != 0 || math.IsNaN(r) {
			t.Errorf("Spearman(%v, %v) = %v, want 0", c[0], c[1], r)
		}
	}
	if min, max := MinMax(nil); min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = %v,%v, want 0,0", min, max)
	}
	if min, max := MinMax([]float64{-2}); min != -2 || max != -2 {
		t.Errorf("MinMax single = %v,%v, want -2,-2", min, max)
	}
}
