// Package bgcompile is the bounded background compilation pipeline of
// the host substrate: a fixed worker pool fed by a priority queue of
// plan-build jobs (interp.CompileJob), ordered by sampler count so the
// hottest code compiles first, deduplicated in-flight by program
// fingerprint × function × plan kind × mode so a thundering herd of
// cold tenants triggers exactly one build, and bounded in depth with
// drop-lowest backpressure so a burst can never stall a submitting
// engine or grow the heap without limit.
//
// Determinism: a job builds a closure or register-trace plan and
// CAS-installs it into the owning Code's plan slot. Which host tier
// executes an iteration is never a virtual observable (the difftest
// soaks prove all tiers bit-identical), so the wall-clock-racy moment
// at which a background install lands changes only host speed — replay
// stays byte-identical with the pool on or off. See DESIGN.md §15.
package bgcompile

import (
	"container/heap"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"evolvevm/internal/interp"
)

// DefaultDepth bounds the priority queue. 256 pending builds is far
// beyond any observed warmup burst (one serve epoch touches tens of
// functions); past it the pool sheds the coldest work rather than
// queueing unboundedly.
const DefaultDepth = 256

// jobKey identifies a build for in-flight deduplication: two Codes with
// equal fingerprints execute identically, so one build per
// (fingerprint, fn, kind, mode) suffices no matter how many tenants
// submit it.
type jobKey struct {
	fp   uint64
	fn   int
	kind interp.CompileKind
	mode bool
}

type entry struct {
	job interp.CompileJob
	key jobKey
	pri int64
	seq uint64 // FIFO tie-break among equal priorities
}

// jobHeap is a max-heap on priority (sampler count at enqueue), oldest
// first among equals.
type jobHeap []entry

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)        { *h = append(*h, x.(entry)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = entry{}
	*h = old[:n-1]
	return e
}

// Pool is a bounded background compilation pipeline. The zero value is
// not usable; construct with NewPool. A Pool satisfies
// interp.CompileQueue.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond // work available or closing
	idle     *sync.Cond // queue empty and no build in flight
	queue    jobHeap
	inflight map[jobKey]struct{}
	seq      uint64
	building int
	closed   bool
	wg       sync.WaitGroup

	workers int
	depth   int

	enqueued     atomic.Int64
	built        atomic.Int64
	lostInstalls atomic.Int64
	dropped      atomic.Int64
	deduped      atomic.Int64
	highWater    atomic.Int64

	// hist[kind] is the per-kind build-time histogram (log2 ns buckets).
	hist [2]histogram
}

// NewPool starts a pool of the given worker count (0: half the
// schedulable cores, minimum one — compilation should overlap execution,
// not crowd it out) and queue depth (0: DefaultDepth).
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / 2
		if workers < 1 {
			workers = 1
		}
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	p := &Pool{
		inflight: make(map[jobKey]struct{}),
		workers:  workers,
		depth:    depth,
	}
	p.cond = sync.NewCond(&p.mu)
	p.idle = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Submit enqueues one build without ever blocking the caller. A job
// already in flight for the same (fingerprint, fn, kind, mode) is
// dedup-suppressed; when the queue is full, the lowest-priority pending
// build is shed to make room (or the incoming job itself, when it is the
// coldest). Shed and suppressed jobs are Discarded so the owning engine
// can re-enqueue at its next promotion attempt.
func (p *Pool) Submit(job interp.CompileJob) {
	p.enqueued.Add(1)
	key := jobKey{fp: job.Code.Fingerprint(), fn: job.Code.FnIdx, kind: job.Kind, mode: job.Mode}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.dropped.Add(1)
		job.Discard()
		return
	}
	if _, dup := p.inflight[key]; dup {
		p.mu.Unlock()
		p.deduped.Add(1)
		job.Discard()
		return
	}
	if len(p.queue) >= p.depth {
		// Shed the coldest pending build. The heap orders hottest-first,
		// so the victim needs a linear scan — it only runs when the queue
		// is already at depth, never on the common path.
		victim := 0
		for i := 1; i < len(p.queue); i++ {
			if p.queue.Less(victim, i) {
				victim = i
			}
		}
		if p.queue[victim].pri >= job.Priority {
			p.mu.Unlock()
			p.dropped.Add(1)
			job.Discard()
			return
		}
		shed := p.queue[victim]
		heap.Remove(&p.queue, victim)
		delete(p.inflight, shed.key)
		p.dropped.Add(1)
		shed.job.Discard()
	}
	p.inflight[key] = struct{}{}
	p.seq++
	heap.Push(&p.queue, entry{job: job, key: key, pri: job.Priority, seq: p.seq})
	if n := int64(len(p.queue)); n > p.highWater.Load() {
		p.highWater.Store(n)
	}
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			// Closed with the queue drained — graceful shutdown builds
			// every job accepted before Close.
			p.mu.Unlock()
			return
		}
		e := heap.Pop(&p.queue).(entry)
		p.building++
		p.mu.Unlock()

		start := time.Now()
		won := e.job.Build()
		p.hist[e.key.kind&1].note(time.Since(start).Nanoseconds())
		if won {
			p.built.Add(1)
		} else {
			p.lostInstalls.Add(1)
		}

		p.mu.Lock()
		// The key stays in flight for the whole build so duplicates are
		// suppressed until the plan is actually installed.
		delete(p.inflight, e.key)
		p.building--
		if len(p.queue) == 0 && p.building == 0 {
			p.idle.Broadcast()
		}
		p.mu.Unlock()
	}
}

// Drain blocks until the queue is empty and no build is in flight,
// leaving the pool running. Tests and epoch barriers use it to reach a
// quiescent point without tearing the workers down.
func (p *Pool) Drain() {
	p.mu.Lock()
	for len(p.queue) > 0 || p.building > 0 {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// Close drains the queue gracefully — every job accepted before Close is
// built — then stops the workers and waits for them to exit. Submits
// after Close are dropped (and Discarded). Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	p.mu.Lock()
	if len(p.queue) == 0 && p.building == 0 {
		p.idle.Broadcast()
	}
	p.mu.Unlock()
}

// BuildTimes summarizes one plan kind's build-duration histogram.
// Quantiles are log2-bucket upper bounds: exact enough to spot a
// regression, cheap enough to sample every build.
type BuildTimes struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// Stats is a point-in-time snapshot of the pool's counters. At
// quiescence (Drain or Close) the flow conserves:
// Enqueued = Built + LostInstalls + Dropped + Deduped.
type Stats struct {
	Workers  int `json:"workers"`
	Depth    int `json:"depth"`
	QueueLen int `json:"queue_len"`
	// InFlight counts builds a worker is executing right now.
	InFlight int `json:"in_flight"`
	// QueueHighWater is the deepest the queue has been since start.
	QueueHighWater int64 `json:"queue_high_water"`
	// Enqueued counts every Submit; Deduped the submits suppressed by an
	// identical in-flight build; Dropped the submits shed by
	// backpressure (either end) or arriving after Close; Built the
	// builds whose install won; LostInstalls the builds whose plan was
	// discarded because a concurrent builder's landed first.
	Enqueued     int64 `json:"enqueued"`
	Built        int64 `json:"built"`
	LostInstalls int64 `json:"lost_installs"`
	Dropped      int64 `json:"dropped"`
	Deduped      int64 `json:"deduped"`

	Closure BuildTimes `json:"closure_build"`
	Trace   BuildTimes `json:"trace_build"`
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	qlen, building := len(p.queue), p.building
	p.mu.Unlock()
	return Stats{
		Workers:        p.workers,
		Depth:          p.depth,
		QueueLen:       qlen,
		InFlight:       building,
		QueueHighWater: p.highWater.Load(),
		Enqueued:       p.enqueued.Load(),
		Built:          p.built.Load(),
		LostInstalls:   p.lostInstalls.Load(),
		Dropped:        p.dropped.Load(),
		Deduped:        p.deduped.Load(),
		Closure:        p.hist[interp.CompileClosure].snapshot(),
		Trace:          p.hist[interp.CompileTrace].snapshot(),
	}
}

// histogram is a lock-free log2 build-time histogram: bucket i counts
// durations in [2^i, 2^(i+1)) ns.
type histogram struct {
	buckets [40]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

func (h *histogram) note(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// quantile returns the upper bound of the bucket holding the q-th
// sample (0 < q <= 1).
func (h *histogram) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(float64(total) * q)
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return 1<<uint(i) - 1
		}
	}
	return h.max.Load()
}

func (h *histogram) snapshot() BuildTimes {
	count := h.count.Load()
	bt := BuildTimes{
		Count: count,
		P50Ns: h.quantile(0.50),
		P99Ns: h.quantile(0.99),
		MaxNs: h.max.Load(),
	}
	if count > 0 {
		bt.MeanNs = h.sum.Load() / count
	}
	return bt
}
