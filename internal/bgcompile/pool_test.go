package bgcompile

import (
	"container/heap"
	"sync"
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/interp"
)

const loopSrc = `
func main() locals i sum
	const 0
	store sum
	const 0
	store i
loop:
	load i
	const 200
	ige
	jnz done
	load sum
	load i
	iadd
	store sum
	load i
	const 1
	iadd
	store i
	jmp loop
done:
	load sum
	ret
end
`

// testCode returns a fresh optimized-level Code for the loop program.
// Distinct calls return distinct Codes with equal fingerprints — the
// shape the in-flight dedup exists for.
func testCode(t *testing.T) *interp.Code {
	t.Helper()
	p, err := bytecode.Assemble("t", loopSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return interp.NewCode(0, p.Funcs[0], 0, 50)
}

// stoppedPool returns a pool with no workers: Submit, dedup, and
// backpressure run exactly as in production, but nothing consumes the
// queue, so queue-level behaviour is deterministic.
func stoppedPool(depth int) *Pool {
	p := &Pool{inflight: make(map[jobKey]struct{}), depth: depth}
	p.cond = sync.NewCond(&p.mu)
	p.idle = sync.NewCond(&p.mu)
	return p
}

func job(c *interp.Code, kind interp.CompileKind, mode bool, pri int64) interp.CompileJob {
	return interp.CompileJob{Code: c, Kind: kind, Mode: mode, Priority: pri}
}

func TestSubmitDedupInFlight(t *testing.T) {
	p := stoppedPool(16)
	a, b := testCode(t), testCode(t)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("test codes should fingerprint identically")
	}

	p.Submit(job(a, interp.CompileClosure, true, 2))
	p.Submit(job(a, interp.CompileClosure, true, 3)) // same code again
	p.Submit(job(b, interp.CompileClosure, true, 4)) // distinct code, same fingerprint
	p.Submit(job(a, interp.CompileClosure, false, 2)) // different mode: not a dup
	p.Submit(job(a, interp.CompileTrace, true, 2))    // different kind: not a dup

	st := p.Stats()
	if st.Enqueued != 5 || st.Deduped != 2 || st.QueueLen != 3 {
		t.Fatalf("enqueued=%d deduped=%d queue=%d, want 5/2/3", st.Enqueued, st.Deduped, st.QueueLen)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	p := stoppedPool(2)
	mk := func(pri int64) interp.CompileJob {
		c := testCode(t)
		// Unique FnIdx defeats fingerprint dedup so only depth applies.
		c.FnIdx = int(pri)
		return job(c, interp.CompileClosure, true, pri)
	}
	p.Submit(mk(1))
	p.Submit(mk(2))
	p.Submit(mk(3)) // sheds the pri-1 entry
	p.Submit(mk(0)) // colder than everything queued: itself dropped

	st := p.Stats()
	if st.QueueLen != 2 || st.Dropped != 2 {
		t.Fatalf("queue=%d dropped=%d, want 2/2", st.QueueLen, st.Dropped)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pris := []int64{heap.Pop(&p.queue).(entry).pri, heap.Pop(&p.queue).(entry).pri}
	if pris[0] != 3 || pris[1] != 2 {
		t.Fatalf("surviving priorities %v, want [3 2]", pris)
	}
}

func TestPriorityOrderHottestFirst(t *testing.T) {
	p := stoppedPool(16)
	for i, pri := range []int64{1, 5, 3, 5} {
		c := testCode(t)
		c.FnIdx = i
		p.Submit(job(c, interp.CompileClosure, true, pri))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var got []int64
	var fns []int
	for p.queue.Len() > 0 {
		e := heap.Pop(&p.queue).(entry)
		got = append(got, e.pri)
		fns = append(fns, e.key.fn)
	}
	want := []int64{5, 5, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	// Equal priorities pop oldest-first: fn 1 was submitted before fn 3.
	if fns[0] != 1 || fns[1] != 3 {
		t.Fatalf("tie-break order %v, want fn 1 before fn 3", fns)
	}
}

func TestBuildInstallsAndHighWater(t *testing.T) {
	pool := NewPool(2, 8)
	defer pool.Close()
	c := testCode(t)
	pool.Submit(job(c, interp.CompileClosure, true, 2))
	pool.Submit(job(c, interp.CompileTrace, true, 2))
	pool.Drain()

	st := pool.Stats()
	if st.Built != 2 || st.LostInstalls != 0 {
		t.Fatalf("built=%d lost=%d, want 2/0", st.Built, st.LostInstalls)
	}
	if !c.TraceReady() {
		t.Fatal("trace plan not installed after drain")
	}
	if st.QueueHighWater < 1 {
		t.Fatalf("high water %d, want >= 1", st.QueueHighWater)
	}
	if st.Trace.Count != 1 || st.Closure.Count != 1 {
		t.Fatalf("histogram counts closure=%d trace=%d, want 1/1", st.Closure.Count, st.Trace.Count)
	}
}

func TestCloseDrainsQueuedWork(t *testing.T) {
	pool := NewPool(1, 64)
	var codes []*interp.Code
	for i := 0; i < 16; i++ {
		c := testCode(t)
		c.FnIdx = i
		codes = append(codes, c)
		pool.Submit(job(c, interp.CompileTrace, true, int64(i)))
	}
	pool.Close() // graceful: everything accepted must still build

	st := pool.Stats()
	if st.Built+st.LostInstalls != 16 {
		t.Fatalf("built=%d lost=%d, want 16 total", st.Built, st.LostInstalls)
	}
	for i, c := range codes {
		if !c.TraceReady() {
			t.Fatalf("code %d not built after Close", i)
		}
	}
	// Submit after Close drops without building.
	pool.Submit(job(testCode(t), interp.CompileClosure, true, 1))
	if st := pool.Stats(); st.Dropped != 1 {
		t.Fatalf("post-close dropped=%d, want 1", st.Dropped)
	}
}

// TestCounterConservation hammers one pool from many goroutines — a mix
// of duplicate and distinct jobs against a small queue — and checks the
// flow conservation law at quiescence: every submit is accounted as
// exactly one of built, lost-install, dropped, or deduped.
func TestCounterConservation(t *testing.T) {
	pool := NewPool(4, 4)
	defer pool.Close()

	shared := make([]*interp.Code, 8)
	for i := range shared {
		shared[i] = testCode(t)
		shared[i].FnIdx = i
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := shared[(g+i)%len(shared)]
				pool.Submit(job(c, interp.CompileKind(i%2), i%3 == 0, int64(i%7)))
			}
		}(g)
	}
	wg.Wait()
	pool.Drain()

	st := pool.Stats()
	if got := st.Built + st.LostInstalls + st.Dropped + st.Deduped; got != st.Enqueued {
		t.Fatalf("conservation violated: built %d + lost %d + dropped %d + deduped %d = %d, enqueued %d",
			st.Built, st.LostInstalls, st.Dropped, st.Deduped, got, st.Enqueued)
	}
	if st.QueueLen != 0 || st.InFlight != 0 {
		t.Fatalf("not quiescent after Drain: queue=%d inflight=%d", st.QueueLen, st.InFlight)
	}
}
