package bytecode

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual assembly in src into a verified Program named
// name.
//
// Assembly syntax, line oriented ("; " and "#" start comments):
//
//	global size
//	func main(argc) locals i j sum
//	loop:
//	  load i
//	  gload size
//	  ilt
//	  jz done
//	  iinc i 1
//	  jmp loop
//	done:
//	  load sum
//	  ret
//	end
//
// Local slots are referred to by name (arguments first, then the names
// declared after "locals"). Jump targets are labels. "const x" pushes a
// numeric literal: integer literals that fit in 32 bits become IPUSH,
// everything else is interned in the constant pool ("fconst x" forces a
// float constant). "call f n" calls function f with n arguments; functions
// may be referenced before they are defined.
func Assemble(name, src string) (*Program, error) {
	a := &assembler{prog: NewProgram(name)}
	if err := a.run(src); err != nil {
		return nil, err
	}
	if err := Verify(a.prog); err != nil {
		return nil, err
	}
	return a.prog, nil
}

type pendingCall struct {
	fn   *Function
	pc   int
	name string
	argc int
	line int
}

type assembler struct {
	prog  *Program
	calls []pendingCall

	// current function state
	fn     *Function
	fnLine int
	locals map[string]int
	labels map[string]int
	fixups []fixup // jump-target patches
}

type fixup struct {
	pc    int
	label string
	line  int
}

func (a *assembler) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", a.prog.Name, line, fmt.Sprintf(format, args...))
}

func (a *assembler) run(src string) error {
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.line(lineNo, line); err != nil {
			return err
		}
	}
	if a.fn != nil {
		return a.errf(a.fnLine, "function %q not closed with \"end\"", a.fn.Name)
	}
	// Resolve forward function references.
	for _, c := range a.calls {
		idx, ok := a.prog.FuncIndex(c.name)
		if !ok {
			return a.errf(c.line, "call to undefined function %q", c.name)
		}
		callee := a.prog.Funcs[idx]
		if callee.NArgs != c.argc {
			return a.errf(c.line, "call to %q with %d args; function takes %d",
				c.name, c.argc, callee.NArgs)
		}
		c.fn.Code[c.pc].A = int32(idx)
	}
	if a.prog.Entry < 0 {
		return fmt.Errorf("%s: no \"main\" function", a.prog.Name)
	}
	return nil
}

func stripComment(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ';' || s[i] == '#' {
			return s[:i]
		}
	}
	return s
}

func (a *assembler) line(lineNo int, line string) error {
	// Handle "label:" prefixes, possibly followed by an instruction.
	for {
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			break
		}
		head := strings.TrimSpace(line[:colon])
		if head == "" || strings.ContainsAny(head, " \t(") {
			break // not a label (e.g. "func f(x)" has no leading label)
		}
		if a.fn == nil {
			return a.errf(lineNo, "label %q outside function", head)
		}
		if _, dup := a.labels[head]; dup {
			return a.errf(lineNo, "duplicate label %q", head)
		}
		a.labels[head] = len(a.fn.Code)
		line = strings.TrimSpace(line[colon+1:])
		if line == "" {
			return nil
		}
	}

	fields := strings.Fields(line)
	switch fields[0] {
	case "global":
		if a.fn != nil {
			return a.errf(lineNo, "global declaration inside function")
		}
		if len(fields) != 2 {
			return a.errf(lineNo, "usage: global <name>")
		}
		a.prog.AddGlobal(fields[1])
		return nil
	case "func":
		if a.fn != nil {
			return a.errf(lineNo, "nested function (missing \"end\"?)")
		}
		return a.beginFunc(lineNo, line)
	case "end":
		if a.fn == nil {
			return a.errf(lineNo, "\"end\" outside function")
		}
		return a.endFunc(lineNo)
	}
	if a.fn == nil {
		return a.errf(lineNo, "instruction outside function: %q", line)
	}
	return a.instr(lineNo, fields)
}

func (a *assembler) beginFunc(lineNo int, line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "func"))
	open := strings.IndexByte(rest, '(')
	closeP := strings.IndexByte(rest, ')')
	if open < 0 || closeP < open {
		return a.errf(lineNo, "usage: func name(arg, ...) [locals a b c]")
	}
	fname := strings.TrimSpace(rest[:open])
	if fname == "" {
		return a.errf(lineNo, "missing function name")
	}
	var args []string
	argsStr := strings.TrimSpace(rest[open+1 : closeP])
	if argsStr != "" {
		for _, arg := range strings.Split(argsStr, ",") {
			arg = strings.TrimSpace(arg)
			if arg == "" {
				return a.errf(lineNo, "empty argument name in %q", fname)
			}
			args = append(args, arg)
		}
	}
	var extra []string
	tail := strings.TrimSpace(rest[closeP+1:])
	if tail != "" {
		tf := strings.Fields(tail)
		if tf[0] != "locals" {
			return a.errf(lineNo, "unexpected %q after argument list", tf[0])
		}
		extra = tf[1:]
	}

	fn := &Function{Name: fname, NArgs: len(args)}
	a.locals = make(map[string]int)
	for _, n := range append(append([]string(nil), args...), extra...) {
		if _, dup := a.locals[n]; dup {
			return a.errf(lineNo, "duplicate local %q in %q", n, fname)
		}
		a.locals[n] = len(fn.LocalNames)
		fn.LocalNames = append(fn.LocalNames, n)
	}
	fn.NLocals = len(fn.LocalNames)
	a.fn = fn
	a.fnLine = lineNo
	a.labels = make(map[string]int)
	a.fixups = nil
	return nil
}

func (a *assembler) endFunc(lineNo int) error {
	for _, fx := range a.fixups {
		target, ok := a.labels[fx.label]
		if !ok {
			return a.errf(fx.line, "undefined label %q in %q", fx.label, a.fn.Name)
		}
		a.fn.Code[fx.pc].A = int32(target)
	}
	if _, err := a.prog.AddFunction(a.fn); err != nil {
		return a.errf(lineNo, "%v", err)
	}
	a.fn = nil
	return nil
}

func (a *assembler) emit(in Instr) {
	a.fn.Code = append(a.fn.Code, in)
}

func (a *assembler) localSlot(lineNo int, name string) (int32, error) {
	if idx, ok := a.locals[name]; ok {
		return int32(idx), nil
	}
	if n, err := strconv.Atoi(name); err == nil && n >= 0 && n < a.fn.NLocals {
		return int32(n), nil
	}
	return 0, a.errf(lineNo, "unknown local %q in %q", name, a.fn.Name)
}

func (a *assembler) instr(lineNo int, fields []string) error {
	mnem := fields[0]
	operands := fields[1:]

	// "const" and "fconst" are pseudo-mnemonics handled specially.
	switch mnem {
	case "const":
		if len(operands) != 1 {
			return a.errf(lineNo, "usage: const <number>")
		}
		return a.emitConst(lineNo, operands[0], false)
	case "fconst":
		if len(operands) != 1 {
			return a.errf(lineNo, "usage: fconst <number>")
		}
		return a.emitConst(lineNo, operands[0], true)
	}

	op, ok := OpByName(mnem)
	if !ok {
		return a.errf(lineNo, "unknown mnemonic %q", mnem)
	}
	info := opTable[op]
	switch info.operands {
	case opsNone:
		if len(operands) != 0 {
			return a.errf(lineNo, "%s takes no operands", mnem)
		}
		a.emit(Instr{Op: op})
	case opsImm:
		if len(operands) != 1 {
			return a.errf(lineNo, "usage: %s <int>", mnem)
		}
		n, err := strconv.ParseInt(operands[0], 0, 32)
		if err != nil {
			return a.errf(lineNo, "bad immediate %q: %v", operands[0], err)
		}
		a.emit(Instr{Op: op, A: int32(n)})
	case opsConst:
		if len(operands) != 1 {
			return a.errf(lineNo, "usage: %s <pool-index>", mnem)
		}
		n, err := strconv.Atoi(operands[0])
		if err != nil {
			return a.errf(lineNo, "bad pool index %q", operands[0])
		}
		a.emit(Instr{Op: op, A: int32(n)})
	case opsLocal:
		if len(operands) != 1 {
			return a.errf(lineNo, "usage: %s <local>", mnem)
		}
		slot, err := a.localSlot(lineNo, operands[0])
		if err != nil {
			return err
		}
		a.emit(Instr{Op: op, A: slot})
	case opsLocImm:
		if len(operands) != 2 {
			return a.errf(lineNo, "usage: %s <local> <int>", mnem)
		}
		slot, err := a.localSlot(lineNo, operands[0])
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(operands[1], 0, 32)
		if err != nil {
			return a.errf(lineNo, "bad immediate %q: %v", operands[1], err)
		}
		a.emit(Instr{Op: op, A: slot, B: int32(n)})
	case opsGlobal:
		if len(operands) != 1 {
			return a.errf(lineNo, "usage: %s <global>", mnem)
		}
		idx, ok := a.prog.GlobalIndex(operands[0])
		if !ok {
			return a.errf(lineNo, "unknown global %q", operands[0])
		}
		a.emit(Instr{Op: op, A: int32(idx)})
	case opsTarget:
		if len(operands) != 1 {
			return a.errf(lineNo, "usage: %s <label>", mnem)
		}
		a.fixups = append(a.fixups, fixup{pc: len(a.fn.Code), label: operands[0], line: lineNo})
		a.emit(Instr{Op: op})
	case opsCall:
		if len(operands) != 2 {
			return a.errf(lineNo, "usage: call <func> <argc>")
		}
		argc, err := strconv.Atoi(operands[1])
		if err != nil || argc < 0 {
			return a.errf(lineNo, "bad arg count %q", operands[1])
		}
		a.calls = append(a.calls, pendingCall{
			fn: a.fn, pc: len(a.fn.Code), name: operands[0], argc: argc, line: lineNo,
		})
		a.emit(Instr{Op: op, B: int32(argc)})
	default:
		return a.errf(lineNo, "internal: unhandled operand kind for %s", mnem)
	}
	return nil
}

func (a *assembler) emitConst(lineNo int, lit string, forceFloat bool) error {
	isFloat := forceFloat || strings.ContainsAny(lit, ".eE") &&
		!strings.HasPrefix(lit, "0x") && !strings.HasPrefix(lit, "-0x")
	if !isFloat {
		n, err := strconv.ParseInt(lit, 0, 64)
		if err != nil {
			return a.errf(lineNo, "bad integer literal %q: %v", lit, err)
		}
		if n >= -1<<31 && n < 1<<31 {
			a.emit(Instr{Op: IPUSH, A: int32(n)})
		} else {
			a.emit(Instr{Op: CONST, A: a.fn.AddConst(Int(n))})
		}
		return nil
	}
	f, err := strconv.ParseFloat(lit, 64)
	if err != nil {
		return a.errf(lineNo, "bad float literal %q: %v", lit, err)
	}
	a.emit(Instr{Op: CONST, A: a.fn.AddConst(Float(f))})
	return nil
}
