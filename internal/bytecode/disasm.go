package bytecode

import (
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders a function as readable assembly-like text with
// synthesized labels at jump targets. The output is meant for humans and
// tests; it is not guaranteed to round-trip through Assemble.
func Disassemble(p *Program, f *Function) string {
	targets := map[int]string{}
	for _, in := range f.Code {
		if in.Op.IsJump() {
			if _, ok := targets[int(in.A)]; !ok {
				targets[int(in.A)] = fmt.Sprintf("L%d", len(targets))
			}
		}
	}
	// Renumber labels in code order for stable output.
	var order []int
	for pc := range targets {
		order = append(order, pc)
	}
	sort.Ints(order)
	for i, pc := range order {
		targets[pc] = fmt.Sprintf("L%d", i)
	}

	var b strings.Builder
	args := make([]string, 0, f.NArgs)
	for i := 0; i < f.NArgs; i++ {
		args = append(args, localName(f, i))
	}
	fmt.Fprintf(&b, "func %s(%s) locals=%d stack=%d\n",
		f.Name, strings.Join(args, ", "), f.NLocals, f.MaxStack)
	for pc, in := range f.Code {
		if lbl, ok := targets[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		fmt.Fprintf(&b, "  %3d  %s\n", pc, formatInstr(p, f, in, targets))
	}
	return b.String()
}

// DisassembleProgram renders every function in the program.
func DisassembleProgram(p *Program) string {
	var b strings.Builder
	for i, g := range p.Globals {
		fmt.Fprintf(&b, "global %s ; slot %d\n", g, i)
	}
	for _, f := range p.Funcs {
		b.WriteString(Disassemble(p, f))
		b.WriteString("\n")
	}
	return b.String()
}

func localName(f *Function, slot int) string {
	if slot < len(f.LocalNames) {
		return f.LocalNames[slot]
	}
	return fmt.Sprintf("t%d", slot)
}

func formatInstr(p *Program, f *Function, in Instr, targets map[int]string) string {
	switch opTable[in.Op].operands {
	case opsNone:
		return in.Op.String()
	case opsImm:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case opsConst:
		if int(in.A) < len(f.Consts) {
			return fmt.Sprintf("%s %s", in.Op, f.Consts[in.A])
		}
		return fmt.Sprintf("%s #%d!", in.Op, in.A)
	case opsLocal:
		return fmt.Sprintf("%s %s", in.Op, localName(f, int(in.A)))
	case opsLocImm:
		return fmt.Sprintf("%s %s %d", in.Op, localName(f, int(in.A)), in.B)
	case opsGlobal:
		if int(in.A) < len(p.Globals) {
			return fmt.Sprintf("%s %s", in.Op, p.Globals[in.A])
		}
		return fmt.Sprintf("%s g%d!", in.Op, in.A)
	case opsTarget:
		if lbl, ok := targets[int(in.A)]; ok {
			return fmt.Sprintf("%s %s", in.Op, lbl)
		}
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case opsCall:
		if int(in.A) < len(p.Funcs) {
			return fmt.Sprintf("%s %s %d", in.Op, p.Funcs[in.A].Name, in.B)
		}
		return fmt.Sprintf("%s f%d %d", in.Op, in.A, in.B)
	}
	return in.String()
}
