package bytecode

import "fmt"

// Verify checks structural well-formedness of every function in the
// program and computes each function's MaxStack. It enforces:
//
//   - all opcodes defined, all operand indices in range;
//   - jump targets inside the function;
//   - call targets valid with matching arity;
//   - consistent operand-stack depth at every instruction (a fixed depth
//     per program point, as in the JVM verifier), never negative;
//   - execution cannot fall off the end of the code.
//
// Static operand checks apply to every instruction, including ones the
// depth dataflow never reaches: the optimizer walks whole bodies (constant
// folding reads pool entries, inlining resolves call targets, compaction
// remaps jump targets), so unreachable-but-malformed instructions must be
// rejected here, not discovered as panics downstream.
func Verify(p *Program) error {
	for _, f := range p.Funcs {
		if err := verifyFunc(p, f); err != nil {
			return err
		}
	}
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return fmt.Errorf("%s: invalid entry function index %d", p.Name, p.Entry)
	}
	if n := p.Funcs[p.Entry].NArgs; n != 0 {
		return fmt.Errorf("%s: entry function %q must take 0 args, has %d",
			p.Name, p.Funcs[p.Entry].Name, n)
	}
	return nil
}

// VerifyFunc checks a single function against program p (used by the
// optimizer to validate rewritten code).
func VerifyFunc(p *Program, f *Function) error { return verifyFunc(p, f) }

func verifyFunc(p *Program, f *Function) error {
	errf := func(pc int, format string, args ...interface{}) error {
		loc := fmt.Sprintf("%s.%s+%d", p.Name, f.Name, pc)
		return fmt.Errorf("verify %s: %s", loc, fmt.Sprintf(format, args...))
	}
	if f.NArgs > f.NLocals {
		return fmt.Errorf("verify %s.%s: NArgs %d > NLocals %d", p.Name, f.Name, f.NArgs, f.NLocals)
	}
	if len(f.Code) == 0 {
		return fmt.Errorf("verify %s.%s: empty body", p.Name, f.Name)
	}

	// Static operand validation over every instruction, reachable or not.
	for pc, in := range f.Code {
		if !in.Op.Valid() {
			return errf(pc, "invalid opcode %d", in.Op)
		}
		switch opTable[in.Op].operands {
		case opsConst:
			if int(in.A) < 0 || int(in.A) >= len(f.Consts) {
				return errf(pc, "const index %d out of range (pool size %d)", in.A, len(f.Consts))
			}
		case opsLocal, opsLocImm:
			if int(in.A) < 0 || int(in.A) >= f.NLocals {
				return errf(pc, "local slot %d out of range (%d locals)", in.A, f.NLocals)
			}
		case opsGlobal:
			if int(in.A) < 0 || int(in.A) >= len(p.Globals) {
				return errf(pc, "global slot %d out of range (%d globals)", in.A, len(p.Globals))
			}
		case opsTarget:
			if int(in.A) < 0 || int(in.A) >= len(f.Code) {
				return errf(pc, "jump target %d out of range", in.A)
			}
		case opsCall:
			if int(in.A) < 0 || int(in.A) >= len(p.Funcs) {
				return errf(pc, "call target %d out of range (%d funcs)", in.A, len(p.Funcs))
			}
			if callee := p.Funcs[in.A]; callee.NArgs != int(in.B) {
				return errf(pc, "call to %q with %d args; function takes %d",
					callee.Name, in.B, callee.NArgs)
			}
		}
	}

	const unseen = -1
	depth := make([]int, len(f.Code))
	for i := range depth {
		depth[i] = unseen
	}
	work := []int{0}
	depth[0] = 0
	maxDepth := 0

	flow := func(from, to, d int) error {
		if to < 0 || to >= len(f.Code) {
			return errf(from, "jump target %d out of range", to)
		}
		if depth[to] == unseen {
			depth[to] = d
			work = append(work, to)
			return nil
		}
		if depth[to] != d {
			return errf(from, "inconsistent stack depth at %d: %d vs %d", to, depth[to], d)
		}
		return nil
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		d := depth[pc]
		in := f.Code[pc]

		pops, fixed := in.Op.Pops()
		if !fixed { // CALL
			pops = int(in.B)
		}
		if pops < 0 || d < pops {
			return errf(pc, "%s pops %d with stack depth %d", in.Op, pops, d)
		}
		nd := d - pops + in.Op.Pushes()
		if nd > maxDepth {
			maxDepth = nd
		}

		switch {
		case in.Op == RET || in.Op == HALT:
			// no successors
		case in.Op == JMP:
			if err := flow(pc, int(in.A), nd); err != nil {
				return err
			}
		case in.Op.IsConditionalJump():
			if err := flow(pc, int(in.A), nd); err != nil {
				return err
			}
			if err := flow(pc, pc+1, nd); err != nil {
				return err
			}
		default:
			if pc+1 >= len(f.Code) {
				return errf(pc, "control falls off the end of %q", f.Name)
			}
			if err := flow(pc, pc+1, nd); err != nil {
				return err
			}
		}
	}

	f.MaxStack = maxDepth
	return nil
}
