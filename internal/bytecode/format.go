package bytecode

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a program as assembler input: the output of Format is
// accepted by Assemble and produces a semantically identical program.
// This is the machine-facing counterpart of Disassemble (which favours
// human readability and does not round-trip).
//
// Local slots are renamed canonically (x0, x1, ...) because API-built
// programs may carry names the assembler grammar cannot express; global
// and function names are preserved and validated. Constant-pool pushes
// are emitted as "const"/"fconst" literals, so a CONST of a small integer
// reassembles as the equivalent IPUSH: Format(Assemble(Format(p))) is a
// fixpoint, reached after at most one round trip.
//
// The program must pass Verify; Format returns an error for programs it
// cannot express (array-reference constants, an entry function not named
// "main", or names that are not assembler tokens).
func Format(p *Program) (string, error) {
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return "", fmt.Errorf("format %s: invalid entry index %d", p.Name, p.Entry)
	}
	if name := p.Funcs[p.Entry].Name; name != "main" {
		return "", fmt.Errorf("format %s: entry function is %q, not \"main\"", p.Name, name)
	}
	var b strings.Builder
	for _, g := range p.Globals {
		if !validToken(g) {
			return "", fmt.Errorf("format %s: global name %q is not an assembler token", p.Name, g)
		}
		fmt.Fprintf(&b, "global %s\n", g)
	}
	for _, f := range p.Funcs {
		if err := formatFunc(&b, p, f); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// validToken reports whether a name survives the assembler's tokenizer:
// one whitespace-free field with none of the grammar's metacharacters.
func validToken(s string) bool {
	if s == "" {
		return false
	}
	return !strings.ContainsAny(s, " \t\r\n:();#,")
}

func formatFunc(b *strings.Builder, p *Program, f *Function) error {
	if !validToken(f.Name) || f.Name == "global" || f.Name == "func" || f.Name == "end" {
		return fmt.Errorf("format %s: function name %q is not an assembler token", p.Name, f.Name)
	}
	local := func(slot int32) string { return "x" + strconv.Itoa(int(slot)) }

	b.WriteString("func ")
	b.WriteString(f.Name)
	b.WriteString("(")
	for i := 0; i < f.NArgs; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(local(int32(i)))
	}
	b.WriteString(")")
	if f.NLocals > f.NArgs {
		b.WriteString(" locals")
		for i := f.NArgs; i < f.NLocals; i++ {
			b.WriteString(" ")
			b.WriteString(local(int32(i)))
		}
	}
	b.WriteString("\n")

	// Synthesize labels at jump targets, numbered in code order.
	labels := map[int]string{}
	for _, in := range f.Code {
		if in.Op.IsJump() {
			if int(in.A) < 0 || int(in.A) >= len(f.Code) {
				return fmt.Errorf("format %s.%s: jump target %d out of range", p.Name, f.Name, in.A)
			}
			labels[int(in.A)] = ""
		}
	}
	n := 0
	for pc := range f.Code {
		if _, ok := labels[pc]; ok {
			labels[pc] = "L" + strconv.Itoa(n)
			n++
		}
	}

	for pc, in := range f.Code {
		if lbl, ok := labels[pc]; ok {
			fmt.Fprintf(b, "%s:\n", lbl)
		}
		switch opTable[in.Op].operands {
		case opsNone:
			fmt.Fprintf(b, "  %s\n", in.Op)
		case opsImm:
			fmt.Fprintf(b, "  %s %d\n", in.Op, in.A)
		case opsConst:
			if int(in.A) < 0 || int(in.A) >= len(f.Consts) {
				return fmt.Errorf("format %s.%s+%d: const index %d out of range", p.Name, f.Name, pc, in.A)
			}
			switch v := f.Consts[in.A]; v.Kind {
			case KInt:
				fmt.Fprintf(b, "  const %d\n", v.I)
			case KFloat:
				fmt.Fprintf(b, "  fconst %s\n", strconv.FormatFloat(v.F, 'g', -1, 64))
			default:
				return fmt.Errorf("format %s.%s+%d: %s constant is not expressible in assembly",
					p.Name, f.Name, pc, v.Kind)
			}
		case opsLocal:
			fmt.Fprintf(b, "  %s %s\n", in.Op, local(in.A))
		case opsLocImm:
			fmt.Fprintf(b, "  %s %s %d\n", in.Op, local(in.A), in.B)
		case opsGlobal:
			if int(in.A) < 0 || int(in.A) >= len(p.Globals) {
				return fmt.Errorf("format %s.%s+%d: global slot %d out of range", p.Name, f.Name, pc, in.A)
			}
			fmt.Fprintf(b, "  %s %s\n", in.Op, p.Globals[in.A])
		case opsTarget:
			fmt.Fprintf(b, "  %s %s\n", in.Op, labels[int(in.A)])
		case opsCall:
			if int(in.A) < 0 || int(in.A) >= len(p.Funcs) {
				return fmt.Errorf("format %s.%s+%d: call target %d out of range", p.Name, f.Name, pc, in.A)
			}
			fmt.Fprintf(b, "  %s %s %d\n", in.Op, p.Funcs[in.A].Name, in.B)
		default:
			return fmt.Errorf("format %s.%s+%d: unhandled operand kind for %s", p.Name, f.Name, pc, in.Op)
		}
	}
	b.WriteString("end\n")
	return nil
}
