// Package bytecode defines the instruction set, value model, and program
// representation of the evolvable virtual machine, together with a textual
// assembler, a disassembler, and a bytecode verifier.
//
// The machine is a stack machine in the style of the JVM: each function has
// a fixed number of local slots (arguments occupy the first slots) and an
// operand stack. Methods are the unit of compilation, exactly as in the
// paper's Jikes RVM substrate: the optimizer chooses a compilation level for
// every function independently.
package bytecode

import "fmt"

// Op is a bytecode opcode.
type Op uint8

// The instruction set. Unless stated otherwise, operands A and B of an
// Instr are unused.
const (
	// NOP does nothing. Eliminated by every optimization level.
	NOP Op = iota

	// IPUSH pushes the int32 literal A as an integer value.
	IPUSH
	// CONST pushes constant-pool entry A.
	CONST

	// LOAD pushes local slot A; STORE pops into local slot A.
	LOAD
	STORE
	// GLOAD pushes global slot A; GSTORE pops into global slot A.
	GLOAD
	GSTORE

	// IINC adds the immediate B to integer local A (no stack traffic).
	IINC

	// POP discards the top of stack; DUP duplicates it; SWAP exchanges the
	// top two values.
	POP
	DUP
	SWAP

	// Integer arithmetic. Binary ops pop b then a and push a∘b.
	IADD
	ISUB
	IMUL
	IDIV
	IMOD
	INEG
	IAND
	IOR
	IXOR
	ISHL
	ISHR
	INOT

	// Float arithmetic.
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FSQRT
	FABS

	// Conversions.
	I2F
	F2I

	// Comparisons push integer 1 or 0.
	IEQ
	INE
	ILT
	ILE
	IGT
	IGE
	FEQ
	FNE
	FLT
	FLE
	FGT
	FGE

	// JMP jumps to instruction index A. JZ/JNZ pop an integer and jump if
	// it is zero / nonzero.
	JMP
	JZ
	JNZ

	// CALL invokes function index A with B arguments taken from the stack
	// (pushed left to right). The callee's return value is pushed.
	CALL
	// RET returns the top of stack to the caller. Every function returns
	// exactly one value.
	RET

	// NEWARR pops a length n and pushes a reference to a new zeroed array
	// of n values. ALOAD pops index then array and pushes the element.
	// ASTORE pops value, index, array. ALEN pops an array and pushes its
	// length.
	NEWARR
	ALOAD
	ASTORE
	ALEN

	// PRINT pops a value and appends it to the machine's output log.
	PRINT

	// HALT stops the machine.
	HALT

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// opInfo describes the static properties of an opcode.
type opInfo struct {
	name   string
	pops   int // -1: special-cased (CALL)
	pushes int
	// operand kinds used by the assembler/disassembler/verifier
	operands operandKind
}

type operandKind uint8

const (
	opsNone   operandKind = iota
	opsImm                // A is an immediate integer (IPUSH)
	opsConst              // A is a constant-pool index
	opsLocal              // A is a local slot
	opsLocImm             // A is a local slot, B an immediate (IINC)
	opsGlobal             // A is a global slot
	opsTarget             // A is a jump target (instruction index)
	opsCall               // A is a function index, B an arg count
)

var opTable = [numOps]opInfo{
	NOP:    {"nop", 0, 0, opsNone},
	IPUSH:  {"ipush", 0, 1, opsImm},
	CONST:  {"const", 0, 1, opsConst},
	LOAD:   {"load", 0, 1, opsLocal},
	STORE:  {"store", 1, 0, opsLocal},
	GLOAD:  {"gload", 0, 1, opsGlobal},
	GSTORE: {"gstore", 1, 0, opsGlobal},
	IINC:   {"iinc", 0, 0, opsLocImm},
	POP:    {"pop", 1, 0, opsNone},
	DUP:    {"dup", 1, 2, opsNone},
	SWAP:   {"swap", 2, 2, opsNone},
	IADD:   {"iadd", 2, 1, opsNone},
	ISUB:   {"isub", 2, 1, opsNone},
	IMUL:   {"imul", 2, 1, opsNone},
	IDIV:   {"idiv", 2, 1, opsNone},
	IMOD:   {"imod", 2, 1, opsNone},
	INEG:   {"ineg", 1, 1, opsNone},
	IAND:   {"iand", 2, 1, opsNone},
	IOR:    {"ior", 2, 1, opsNone},
	IXOR:   {"ixor", 2, 1, opsNone},
	ISHL:   {"ishl", 2, 1, opsNone},
	ISHR:   {"ishr", 2, 1, opsNone},
	INOT:   {"inot", 1, 1, opsNone},
	FADD:   {"fadd", 2, 1, opsNone},
	FSUB:   {"fsub", 2, 1, opsNone},
	FMUL:   {"fmul", 2, 1, opsNone},
	FDIV:   {"fdiv", 2, 1, opsNone},
	FNEG:   {"fneg", 1, 1, opsNone},
	FSQRT:  {"fsqrt", 1, 1, opsNone},
	FABS:   {"fabs", 1, 1, opsNone},
	I2F:    {"i2f", 1, 1, opsNone},
	F2I:    {"f2i", 1, 1, opsNone},
	IEQ:    {"ieq", 2, 1, opsNone},
	INE:    {"ine", 2, 1, opsNone},
	ILT:    {"ilt", 2, 1, opsNone},
	ILE:    {"ile", 2, 1, opsNone},
	IGT:    {"igt", 2, 1, opsNone},
	IGE:    {"ige", 2, 1, opsNone},
	FEQ:    {"feq", 2, 1, opsNone},
	FNE:    {"fne", 2, 1, opsNone},
	FLT:    {"flt", 2, 1, opsNone},
	FLE:    {"fle", 2, 1, opsNone},
	FGT:    {"fgt", 2, 1, opsNone},
	FGE:    {"fge", 2, 1, opsNone},
	JMP:    {"jmp", 0, 0, opsTarget},
	JZ:     {"jz", 1, 0, opsTarget},
	JNZ:    {"jnz", 1, 0, opsTarget},
	CALL:   {"call", -1, 1, opsCall},
	RET:    {"ret", 1, 0, opsNone},
	NEWARR: {"newarr", 1, 1, opsNone},
	ALOAD:  {"aload", 2, 1, opsNone},
	ASTORE: {"astore", 3, 0, opsNone},
	ALEN:   {"alen", 1, 1, opsNone},
	PRINT:  {"print", 1, 0, opsNone},
	HALT:   {"halt", 0, 0, opsNone},
}

// String returns the assembler mnemonic of the opcode.
func (op Op) String() string {
	if int(op) < len(opTable) && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < numOps && opTable[op].name != "" }

// Pops returns how many operands the opcode pops, and whether the count is
// fixed. CALL pops a variable number and reports fixed == false.
func (op Op) Pops() (n int, fixed bool) {
	n = opTable[op].pops
	return n, n >= 0
}

// Pushes returns how many values the opcode pushes.
func (op Op) Pushes() int { return opTable[op].pushes }

// IsJump reports whether the opcode transfers control to its A operand.
func (op Op) IsJump() bool { return op == JMP || op == JZ || op == JNZ }

// IsConditionalJump reports whether the opcode is a conditional branch.
func (op Op) IsConditionalJump() bool { return op == JZ || op == JNZ }

// IsTerminator reports whether control never falls through the opcode.
func (op Op) IsTerminator() bool { return op == JMP || op == RET || op == HALT }

// opByName maps mnemonics to opcodes for the assembler.
var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op, info := range opTable {
		if info.name != "" {
			m[info.name] = Op(op)
		}
	}
	return m
}()

// OpByName looks up an opcode by its assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// Instr is a single bytecode instruction. The interpretation of A and B
// depends on the opcode; see the Op constants.
type Instr struct {
	Op Op
	A  int32
	B  int32
}

func (in Instr) String() string {
	switch opTable[in.Op].operands {
	case opsNone:
		return in.Op.String()
	case opsLocImm, opsCall:
		return fmt.Sprintf("%s %d %d", in.Op, in.A, in.B)
	default:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	}
}
