// Package bytecode defines the instruction set, value model, and program
// representation of the evolvable virtual machine, together with a textual
// assembler, a disassembler, and a bytecode verifier.
//
// The machine is a stack machine in the style of the JVM: each function has
// a fixed number of local slots (arguments occupy the first slots) and an
// operand stack. Methods are the unit of compilation, exactly as in the
// paper's Jikes RVM substrate: the optimizer chooses a compilation level for
// every function independently.
//
// The instruction set itself is declared once, in internal/opspec; the
// opcode constants and every static metadata table in this package
// (ops_gen.go) are generated from that spec by cmd/tiergen, together with
// the dispatch arms of all four execution tiers in internal/interp. See
// DESIGN.md §13.
package bytecode

//go:generate go run evolvevm/cmd/tiergen -root ../..

import "fmt"

// Op is a bytecode opcode. The constants live in ops_gen.go, in spec
// order; see internal/opspec for each op's semantics.
type Op uint8

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// opInfo describes the static properties of an opcode.
type opInfo struct {
	name   string
	pops   int // -1: special-cased (CALL)
	pushes int
	// operand kinds used by the assembler/disassembler/verifier
	operands operandKind
}

type operandKind uint8

const (
	opsNone   operandKind = iota
	opsImm                // A is an immediate integer (IPUSH)
	opsConst              // A is a constant-pool index
	opsLocal              // A is a local slot
	opsLocImm             // A is a local slot, B an immediate (IINC)
	opsGlobal             // A is a global slot
	opsTarget             // A is a jump target (instruction index)
	opsCall               // A is a function index, B an arg count
)

// Flag bits of the generated opFlags table.
const (
	flagJump       = 1 << iota // transfers control to operand A
	flagCondJump               // conditional branch
	flagTerminator             // control never falls through
	flagTrap                   // has at least one trap clause
)

// String returns the assembler mnemonic of the opcode.
func (op Op) String() string {
	if int(op) < len(opTable) && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < numOps && opTable[op].name != "" }

// Pops returns how many operands the opcode pops, and whether the count is
// fixed. CALL pops a variable number and reports fixed == false.
func (op Op) Pops() (n int, fixed bool) {
	n = opTable[op].pops
	return n, n >= 0
}

// Pushes returns how many values the opcode pushes.
func (op Op) Pushes() int { return opTable[op].pushes }

// IsJump reports whether the opcode transfers control to its A operand.
func (op Op) IsJump() bool { return op < numOps && opFlags[op]&flagJump != 0 }

// IsConditionalJump reports whether the opcode is a conditional branch.
func (op Op) IsConditionalJump() bool { return op < numOps && opFlags[op]&flagCondJump != 0 }

// IsTerminator reports whether control never falls through the opcode.
func (op Op) IsTerminator() bool { return op < numOps && opFlags[op]&flagTerminator != 0 }

// CanTrap reports whether the opcode has at least one trap clause in the
// spec (division by zero, array bounds, allocation failure).
func (op Op) CanTrap() bool { return op < numOps && opFlags[op]&flagTrap != 0 }

// opByName maps mnemonics to opcodes for the assembler.
var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op, info := range opTable {
		if info.name != "" {
			m[info.name] = Op(op)
		}
	}
	return m
}()

// OpByName looks up an opcode by its assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// Instr is a single bytecode instruction. The interpretation of A and B
// depends on the opcode; see internal/opspec.
type Instr struct {
	Op Op
	A  int32
	B  int32
}

func (in Instr) String() string {
	switch opTable[in.Op].operands {
	case opsNone:
		return in.Op.String()
	case opsLocImm, opsCall:
		return fmt.Sprintf("%s %d %d", in.Op, in.A, in.B)
	default:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	}
}
