package bytecode

import (
	"strings"
	"testing"
)

const sumSrc = `
; sum of 0..n-1
global n
func main() locals i sum
  const 0
  store i
  const 0
  store sum
loop:
  load i
  gload n
  ilt
  jz done
  load sum
  load i
  iadd
  store sum
  iinc i 1
  jmp loop
done:
  load sum
  ret
end
`

func TestAssembleSum(t *testing.T) {
	p, err := Assemble("sum", sumSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Funcs) != 1 {
		t.Fatalf("got %d funcs, want 1", len(p.Funcs))
	}
	f := p.Funcs[0]
	if f.Name != "main" || f.NArgs != 0 || f.NLocals != 2 {
		t.Errorf("func header = %q/%d/%d, want main/0/2", f.Name, f.NArgs, f.NLocals)
	}
	if p.Entry != 0 {
		t.Errorf("Entry = %d, want 0", p.Entry)
	}
	if len(p.Globals) != 1 || p.Globals[0] != "n" {
		t.Errorf("Globals = %v, want [n]", p.Globals)
	}
	if f.MaxStack < 2 {
		t.Errorf("MaxStack = %d, want >= 2", f.MaxStack)
	}
	// The jz target must be the "done" label (pc of "load sum" at end).
	var jzTarget int32 = -1
	for _, in := range f.Code {
		if in.Op == JZ {
			jzTarget = in.A
		}
	}
	if jzTarget < 0 || f.Code[jzTarget].Op != LOAD {
		t.Errorf("jz target %d does not point at the done block", jzTarget)
	}
}

func TestAssembleForwardCall(t *testing.T) {
	src := `
func main() locals x
  const 7
  call double 1
  ret
end
func double(v)
  load v
  load v
  iadd
  ret
end
`
	p, err := Assemble("fwd", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	main := p.FuncByName("main")
	var call Instr
	for _, in := range main.Code {
		if in.Op == CALL {
			call = in
		}
	}
	idx, _ := p.FuncIndex("double")
	if int(call.A) != idx || call.B != 1 {
		t.Errorf("call = %+v, want target %d argc 1", call, idx)
	}
}

func TestAssembleConstForms(t *testing.T) {
	src := `
func main() locals x
  const 5
  pop
  const 3000000000
  pop
  const 2.5
  pop
  fconst 3
  pop
  const -4
  ret
end
`
	p, err := Assemble("consts", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	f := p.Funcs[0]
	ops := []Op{}
	for _, in := range f.Code {
		if in.Op == IPUSH || in.Op == CONST {
			ops = append(ops, in.Op)
		}
	}
	want := []Op{IPUSH, CONST, CONST, CONST, IPUSH}
	if len(ops) != len(want) {
		t.Fatalf("const ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("const op[%d] = %v, want %v", i, ops[i], want[i])
		}
	}
	if len(f.Consts) != 3 {
		t.Errorf("pool size = %d, want 3 (big int, 2.5, float 3)", len(f.Consts))
	}
	if f.Consts[1].Kind != KFloat || f.Consts[1].F != 2.5 {
		t.Errorf("pool[1] = %v, want float 2.5", f.Consts[1])
	}
	if f.Consts[2].Kind != KFloat || f.Consts[2].F != 3 {
		t.Errorf("pool[2] = %v, want float 3", f.Consts[2])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no main", "func f()\n const 0\n ret\nend\n", "no \"main\""},
		{"undefined label", "func main()\n jmp nowhere\nend\n", "undefined label"},
		{"unknown mnemonic", "func main()\n frobnicate\n ret\nend\n", "unknown mnemonic"},
		{"unknown local", "func main()\n load q\n ret\nend\n", "unknown local"},
		{"unknown global", "func main()\n gload q\n ret\nend\n", "unknown global"},
		{"unclosed func", "func main()\n const 0\n ret\n", "not closed"},
		{"dup label", "func main()\nx:\nx:\n const 0\n ret\nend\n", "duplicate label"},
		{"dup local", "func main(a, a)\n const 0\n ret\nend\n", "duplicate local"},
		{"bad call arity", "func main()\n const 1\n call f 1\n ret\nend\nfunc f(a, b)\n const 0\n ret\nend\n", "takes 2"},
		{"undefined call", "func main()\n call g 0\n ret\nend\n", "undefined function"},
		{"entry with args", "func main(x)\n const 0\n ret\nend\n", "must take 0 args"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("t", tc.src)
			if err == nil {
				t.Fatalf("Assemble succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestVerifyRejectsBadStack(t *testing.T) {
	cases := []struct {
		name string
		code []Instr
		want string
	}{
		{"underflow", []Instr{{Op: POP}, {Op: IPUSH}, {Op: RET}}, "pops"},
		{"fall off end", []Instr{{Op: IPUSH}}, "falls off"},
		{"inconsistent depth", []Instr{
			{Op: IPUSH},       // 0: depth 0 -> 1
			{Op: JZ, A: 0},    // 1: pops -> 0, branch to 0 expects 0, but fallthrough..
			{Op: IPUSH},       // 2: 0 -> 1
			{Op: JMP, A: 0},   // 3: back to 0 at depth 1: mismatch
			{Op: IPUSH, A: 0}, // unreachable
			{Op: RET},         // unreachable
		}, "inconsistent stack depth"},
		{"bad jump", []Instr{{Op: JMP, A: 99}, {Op: IPUSH}, {Op: RET}}, "out of range"},
		{"bad const", []Instr{{Op: CONST, A: 3}, {Op: RET}}, "const index"},
		{"bad local", []Instr{{Op: LOAD, A: 9}, {Op: RET}}, "local slot"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewProgram("t")
			f := &Function{Name: "main", NLocals: 1, Code: tc.code}
			if _, err := p.AddFunction(f); err != nil {
				t.Fatal(err)
			}
			err := Verify(p)
			if err == nil {
				t.Fatalf("Verify passed, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestVerifyComputesMaxStack(t *testing.T) {
	p, err := Assemble("t", `
func main() locals a
  const 1
  const 2
  const 3
  iadd
  iadd
  ret
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Funcs[0].MaxStack; got != 3 {
		t.Errorf("MaxStack = %d, want 3", got)
	}
}

func TestDisassembleRoundTripShape(t *testing.T) {
	p, err := Assemble("sum", sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p, p.Funcs[0])
	for _, want := range []string{"func main()", "gload n", "iinc i 1", "jz L", "jmp L"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestProgramCloneIsDeep(t *testing.T) {
	p, err := Assemble("sum", sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	q.Funcs[0].Code[0] = Instr{Op: HALT}
	q.Funcs[0].Name = "other"
	if p.Funcs[0].Code[0].Op == HALT {
		t.Error("Clone shares Code with original")
	}
	if p.Funcs[0].Name != "main" {
		t.Error("Clone shares Function header with original")
	}
	if idx, ok := q.FuncIndex("main"); !ok || idx != 0 {
		t.Error("clone lost function index")
	}
}

func TestValueHelpers(t *testing.T) {
	if !Int(3).IsTrue() || Int(0).IsTrue() {
		t.Error("Int truthiness wrong")
	}
	if !Float(0.5).IsTrue() || Float(0).IsTrue() {
		t.Error("Float truthiness wrong")
	}
	if Bool(true).I != 1 || Bool(false).I != 0 {
		t.Error("Bool wrong")
	}
	if Int(3).AsFloat() != 3.0 || Float(2.9).AsInt() != 2 {
		t.Error("conversions wrong")
	}
	if !Int(4).Equal(Int(4)) || Int(4).Equal(Float(4)) {
		t.Error("Equal wrong")
	}
	if Arr(7).Kind != KArr || Arr(7).I != 7 {
		t.Error("Arr wrong")
	}
	if Int(5).String() != "5" || Float(2.5).String() != "2.5" || Arr(1).String() != "arr#1" {
		t.Error("String wrong")
	}
}

func TestAddConstInterns(t *testing.T) {
	f := &Function{}
	a := f.AddConst(Int(5))
	b := f.AddConst(Float(5))
	c := f.AddConst(Int(5))
	if a == b {
		t.Error("int 5 and float 5 interned together")
	}
	if a != c {
		t.Error("equal consts not interned")
	}
	if len(f.Consts) != 2 {
		t.Errorf("pool size = %d, want 2", len(f.Consts))
	}
}
