package bytecode

import (
	"testing"

	"evolvevm/internal/opspec"
)

// TestSpecRoundTrip round-trips every opcode between the declarative spec
// and the generated metadata in this package: opcode values follow spec
// order, and each op's mnemonic, stack effect, cost, and control-flow/trap
// predicates must match its spec entry exactly. A failure here means the
// committed generated tables have drifted from internal/opspec.
func TestSpecRoundTrip(t *testing.T) {
	if len(opspec.Table) != NumOps {
		t.Fatalf("spec has %d ops, generated tables have %d", len(opspec.Table), NumOps)
	}
	for i := range opspec.Table {
		so := &opspec.Table[i]
		op := Op(i)
		if !op.Valid() {
			t.Errorf("%s: Op(%d) not valid", so.Enum, i)
			continue
		}
		if op.String() != so.Name {
			t.Errorf("%s: mnemonic %q, spec says %q", so.Enum, op.String(), so.Name)
		}
		if got, ok := OpByName(so.Name); !ok || got != op {
			t.Errorf("%s: OpByName(%q) = %v, %v; want %v", so.Enum, so.Name, got, ok, op)
		}
		pops, fixed := op.Pops()
		if fixed != (so.Pops >= 0) || (fixed && pops != so.Pops) {
			t.Errorf("%s: pops = %d (fixed=%v), spec says %d", so.Enum, pops, fixed, so.Pops)
		}
		if op.Pushes() != so.Pushes {
			t.Errorf("%s: pushes = %d, spec says %d", so.Enum, op.Pushes(), so.Pushes)
		}
		if OpCost(op) != so.Cost {
			t.Errorf("%s: cost = %d, spec says %d", so.Enum, OpCost(op), so.Cost)
		}
		if op.IsJump() != so.Jump {
			t.Errorf("%s: IsJump = %v, spec says %v", so.Enum, op.IsJump(), so.Jump)
		}
		if op.IsConditionalJump() != so.CondJump {
			t.Errorf("%s: IsConditionalJump = %v, spec says %v", so.Enum, op.IsConditionalJump(), so.CondJump)
		}
		if op.IsTerminator() != so.Terminator {
			t.Errorf("%s: IsTerminator = %v, spec says %v", so.Enum, op.IsTerminator(), so.Terminator)
		}
		if op.CanTrap() != so.CanTrap() {
			t.Errorf("%s: CanTrap = %v, spec says %v", so.Enum, op.CanTrap(), so.CanTrap())
		}
		if kindName, ok := so.Operands.GoName(); !ok {
			t.Errorf("%s: spec operand kind %d unknown", so.Enum, so.Operands)
		} else if got := operandKindNames[opTable[op].operands]; got != kindName {
			t.Errorf("%s: operand kind %s, spec says %s", so.Enum, got, kindName)
		}
	}
}

// operandKindNames mirrors the bytecode-side operand enum for the
// round-trip check; the spec side guarantees index compatibility.
var operandKindNames = map[operandKind]string{
	opsNone:   "opsNone",
	opsImm:    "opsImm",
	opsConst:  "opsConst",
	opsLocal:  "opsLocal",
	opsLocImm: "opsLocImm",
	opsGlobal: "opsGlobal",
	opsTarget: "opsTarget",
	opsCall:   "opsCall",
}
