package bytecode

import (
	"strings"
	"testing"
)

func TestDisassembleAllOperandKinds(t *testing.T) {
	p, err := Assemble("kinds", `
global g
func main() locals x
  const 0
  store x
  ipush 7
  pop
  const 3000000000
  pop
  gload g
  gstore g
  iinc x 2
  load x
  jz skip
  const 1
  call helper 1
  pop
skip:
  const 0
  ret
end
func helper(a)
  load a
  ret
end
`)
	if err != nil {
		t.Fatal(err)
	}
	out := DisassembleProgram(p)
	for _, want := range []string{
		"global g ; slot 0",
		"func main()",
		"func helper(a)",
		"ipush 7",
		"const 3000000000", // pool constant rendered by value
		"gload g",
		"gstore g",
		"iinc x 2",
		"jz L0",
		"call helper 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestDisassembleSyntheticNames(t *testing.T) {
	// A function without declared local names gets t<N> placeholders,
	// and out-of-range indices render with a ! marker instead of
	// panicking.
	p := NewProgram("t")
	f := &Function{
		Name:    "main",
		NLocals: 2,
		Code: []Instr{
			{Op: LOAD, A: 1},
			{Op: CONST, A: 9}, // out-of-range pool index
			{Op: GLOAD, A: 5}, // out-of-range global
			{Op: CALL, A: 7, B: 0},
			{Op: RET},
		},
	}
	if _, err := p.AddFunction(f); err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p, f)
	for _, want := range []string{"t1", "#9!", "g5!", "f7 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestOpMetadata(t *testing.T) {
	if NOP.String() != "nop" || CALL.String() != "call" {
		t.Error("mnemonics wrong")
	}
	if Op(200).Valid() || Op(200).String() == "" {
		t.Error("invalid opcode handling wrong")
	}
	if n, fixed := CALL.Pops(); fixed || n != -1 {
		t.Error("CALL pop metadata wrong")
	}
	if n, fixed := IADD.Pops(); !fixed || n != 2 {
		t.Error("IADD pop metadata wrong")
	}
	if CALL.Pushes() != 1 || STORE.Pushes() != 0 {
		t.Error("push counts wrong")
	}
	if !JMP.IsTerminator() || !RET.IsTerminator() || JZ.IsTerminator() {
		t.Error("terminator classification wrong")
	}
	if !JZ.IsConditionalJump() || JMP.IsConditionalJump() {
		t.Error("conditional classification wrong")
	}
	if op, ok := OpByName("fsqrt"); !ok || op != FSQRT {
		t.Error("OpByName wrong")
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted bogus name")
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"nop":       {Op: NOP},
		"ipush 5":   {Op: IPUSH, A: 5},
		"load 3":    {Op: LOAD, A: 3},
		"iinc 2 -1": {Op: IINC, A: 2, B: -1},
		"call 4 2":  {Op: CALL, A: 4, B: 2},
		"jmp 9":     {Op: JMP, A: 9},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("Instr.String() = %q, want %q", got, want)
		}
	}
}

func TestProgramAccessors(t *testing.T) {
	p, err := Assemble("acc", `
global a
global b
func main()
  const 0
  ret
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInstrs() != 2 {
		t.Errorf("NumInstrs = %d, want 2", p.NumInstrs())
	}
	if idx, ok := p.GlobalIndex("b"); !ok || idx != 1 {
		t.Error("GlobalIndex wrong")
	}
	if _, ok := p.GlobalIndex("zz"); ok {
		t.Error("GlobalIndex accepted unknown name")
	}
	if p.FuncByName("main") == nil || p.FuncByName("zz") != nil {
		t.Error("FuncByName wrong")
	}
	// Re-declaring a global returns the same slot.
	if p.AddGlobal("a") != 0 {
		t.Error("AddGlobal re-declaration created new slot")
	}
}
