package bytecode

import (
	"strings"
	"testing"
)

const fmtTestSrc = `
global size
global out

func main() locals i acc
  ipush 0
  store i
loop:
  load i
  gload size
  ilt
  jz done
  load i
  call twice 1
  gload out
  iadd
  gstore out
  iinc i 1
  jmp loop
done:
  gload out
  print
  const 3000000000
  fconst 2.5
  fadd
  ret
end

func twice(x)
  load x
  ipush 2
  imul
  ret
end
`

// TestFormatRoundTrip checks the fixpoint property: assembling Format's
// output yields a program whose own Format is stable.
func TestFormatRoundTrip(t *testing.T) {
	p1, err := Assemble("fmt", fmtTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Format(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble("fmt", s1)
	if err != nil {
		t.Fatalf("Format output rejected by Assemble:\n%s\nerror: %v", s1, err)
	}
	s2, err := Format(p2)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Assemble("fmt", s2)
	if err != nil {
		t.Fatalf("second-round Format output rejected:\n%s\nerror: %v", s2, err)
	}
	s3, err := Format(p3)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s3 {
		t.Errorf("Format not a fixpoint after one round trip:\n--- round 2\n%s\n--- round 3\n%s", s2, s3)
	}
	if p2.NumInstrs() != p3.NumInstrs() || len(p2.Funcs) != len(p3.Funcs) {
		t.Errorf("round trips disagree on shape: %d/%d instrs, %d/%d funcs",
			p2.NumInstrs(), p3.NumInstrs(), len(p2.Funcs), len(p3.Funcs))
	}
}

func TestFormatRejectsUnrepresentable(t *testing.T) {
	p := NewProgram("bad")
	f := &Function{Name: "main", NLocals: 0, Code: []Instr{
		{Op: CONST, A: 0}, {Op: RET},
	}, Consts: []Value{Arr(3)}}
	if _, err := p.AddFunction(f); err != nil {
		t.Fatal(err)
	}
	if _, err := Format(p); err == nil {
		t.Error("Format accepted an array-reference constant")
	}

	q := NewProgram("bad2")
	g := &Function{Name: "not main", NLocals: 0, Code: []Instr{{Op: IPUSH, A: 1}, {Op: RET}}}
	if _, err := q.AddFunction(g); err != nil {
		t.Fatal(err)
	}
	q.Entry = 0
	if _, err := Format(q); err == nil {
		t.Error("Format accepted a space-containing entry name")
	}
}

func TestVerifyRejectsUnreachableGarbage(t *testing.T) {
	// An unreachable CONST with an out-of-range pool index must be
	// rejected: the optimizer walks whole bodies, reachable or not.
	cases := []struct {
		name string
		code []Instr
	}{
		{"const", []Instr{{Op: JMP, A: 2}, {Op: CONST, A: 9}, {Op: IPUSH, A: 1}, {Op: RET}}},
		{"local", []Instr{{Op: JMP, A: 2}, {Op: LOAD, A: 7}, {Op: IPUSH, A: 1}, {Op: RET}}},
		{"jump", []Instr{{Op: JMP, A: 2}, {Op: JMP, A: 99}, {Op: IPUSH, A: 1}, {Op: RET}}},
		{"call", []Instr{{Op: JMP, A: 2}, {Op: CALL, A: 44, B: 0}, {Op: IPUSH, A: 1}, {Op: RET}}},
		{"opcode", []Instr{{Op: JMP, A: 2}, {Op: Op(250)}, {Op: IPUSH, A: 1}, {Op: RET}}},
	}
	for _, tc := range cases {
		p := NewProgram("unreach")
		f := &Function{Name: "main", NLocals: 1, Code: tc.code}
		if _, err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
		err := Verify(p)
		if err == nil {
			t.Errorf("%s: Verify accepted unreachable garbage", tc.name)
		} else if !strings.Contains(err.Error(), "verify") {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
	}
}
