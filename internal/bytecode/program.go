package bytecode

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
)

// Function is the unit of compilation: a named method with a fixed set of
// local slots (the first NArgs slots receive the arguments) and a bytecode
// body. Consts is the function's private constant pool.
type Function struct {
	Name    string
	NArgs   int
	NLocals int // total local slots, including arguments
	Code    []Instr
	Consts  []Value

	// LocalNames holds the declared names of the local slots, for
	// disassembly and diagnostics. May be shorter than NLocals.
	LocalNames []string

	// MaxStack is the operand-stack high-water mark computed by Verify.
	MaxStack int
}

// Size returns the number of instructions, the compile-cost unit used by
// the JIT cost model (the analogue of bytecode length in Jikes RVM).
func (f *Function) Size() int { return len(f.Code) }

// Clone returns a deep copy of the function, sharing nothing with the
// receiver. Optimization pipelines clone before rewriting.
func (f *Function) Clone() *Function {
	g := &Function{
		Name:       f.Name,
		NArgs:      f.NArgs,
		NLocals:    f.NLocals,
		Code:       append([]Instr(nil), f.Code...),
		Consts:     append([]Value(nil), f.Consts...),
		LocalNames: append([]string(nil), f.LocalNames...),
		MaxStack:   f.MaxStack,
	}
	return g
}

// AddConst interns v in the function's constant pool and returns its index.
func (f *Function) AddConst(v Value) int32 {
	for i, c := range f.Consts {
		if c.Equal(v) {
			return int32(i)
		}
	}
	f.Consts = append(f.Consts, v)
	return int32(len(f.Consts) - 1)
}

// Program is a linked set of functions plus named global slots. Entry is
// the index of the function executed first (conventionally "main").
type Program struct {
	Name    string
	Funcs   []*Function
	Globals []string
	Entry   int

	funcIdx   map[string]int
	globalIdx map[string]int

	fpOnce sync.Once
	fp     uint64
}

// Fingerprint returns a content hash of the program: the entry index, the
// global-slot count, and every function's name, arity, locals, bytecode,
// and constant pool. Two programs with equal fingerprints compile
// identically at every optimization level, so the hash keys cross-run
// compiled-code caches. The value is computed once and cached; programs
// must not be mutated after the first call.
func (p *Program) Fingerprint() uint64 {
	p.fpOnce.Do(func() {
		h := fnv.New64a()
		var buf [8]byte
		wInt := func(v int64) {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
		wInt(int64(p.Entry))
		wInt(int64(len(p.Globals)))
		wInt(int64(len(p.Funcs)))
		for _, f := range p.Funcs {
			h.Write([]byte(f.Name))
			wInt(int64(f.NArgs))
			wInt(int64(f.NLocals))
			wInt(int64(len(f.Code)))
			for _, in := range f.Code {
				wInt(int64(in.Op)<<48 | int64(uint32(in.A))<<16 | int64(uint16(in.B)))
				wInt(int64(in.B))
			}
			wInt(int64(len(f.Consts)))
			for _, c := range f.Consts {
				wInt(int64(c.Kind))
				wInt(c.I)
				wInt(int64(math.Float64bits(c.F)))
			}
		}
		p.fp = h.Sum64()
	})
	return p.fp
}

// NewProgram returns an empty program with the given name.
func NewProgram(name string) *Program {
	return &Program{
		Name:      name,
		Entry:     -1,
		funcIdx:   make(map[string]int),
		globalIdx: make(map[string]int),
	}
}

// AddFunction appends f and returns its index. Adding a second function
// with the same name is an error.
func (p *Program) AddFunction(f *Function) (int, error) {
	if _, dup := p.funcIdx[f.Name]; dup {
		return 0, fmt.Errorf("bytecode: duplicate function %q", f.Name)
	}
	p.Funcs = append(p.Funcs, f)
	idx := len(p.Funcs) - 1
	p.funcIdx[f.Name] = idx
	if f.Name == "main" {
		p.Entry = idx
	}
	return idx, nil
}

// AddGlobal declares a global slot and returns its index; re-declaring an
// existing name returns the existing index.
func (p *Program) AddGlobal(name string) int {
	if idx, ok := p.globalIdx[name]; ok {
		return idx
	}
	p.Globals = append(p.Globals, name)
	idx := len(p.Globals) - 1
	p.globalIdx[name] = idx
	return idx
}

// FuncIndex returns the index of the named function.
func (p *Program) FuncIndex(name string) (int, bool) {
	idx, ok := p.funcIdx[name]
	return idx, ok
}

// GlobalIndex returns the index of the named global slot.
func (p *Program) GlobalIndex(name string) (int, bool) {
	idx, ok := p.globalIdx[name]
	return idx, ok
}

// FuncByName returns the named function, or nil.
func (p *Program) FuncByName(name string) *Function {
	if idx, ok := p.funcIdx[name]; ok {
		return p.Funcs[idx]
	}
	return nil
}

// NumInstrs returns the total instruction count across all functions.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Code)
	}
	return n
}

// Clone deep-copies the program (functions are cloned; the maps rebuilt).
func (p *Program) Clone() *Program {
	q := NewProgram(p.Name)
	q.Entry = p.Entry
	for _, g := range p.Globals {
		q.AddGlobal(g)
	}
	for _, f := range p.Funcs {
		// Safe: names were unique in p.
		if _, err := q.AddFunction(f.Clone()); err != nil {
			panic("bytecode: Clone: " + err.Error())
		}
	}
	return q
}
