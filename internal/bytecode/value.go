package bytecode

import (
	"fmt"
	"strconv"
)

// Kind discriminates the runtime value types of the machine.
type Kind uint8

const (
	// KInt is a 64-bit signed integer.
	KInt Kind = iota
	// KFloat is a 64-bit IEEE float.
	KFloat
	// KArr is a reference to a heap array; the I field holds the heap
	// index assigned by the execution engine.
	KArr
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KArr:
		return "arr"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single machine value: an integer, a float, or an array
// reference. The zero Value is the integer 0.
type Value struct {
	I    int64
	F    float64
	Kind Kind
}

// Int returns an integer value.
func Int(i int64) Value { return Value{I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{F: f, Kind: KFloat} }

// Arr returns an array-reference value for heap index idx.
func Arr(idx int64) Value { return Value{I: idx, Kind: KArr} }

// Bool returns integer 1 for true and 0 for false.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsTrue reports whether the value is a nonzero integer or float.
func (v Value) IsTrue() bool {
	if v.Kind == KFloat {
		return v.F != 0
	}
	return v.I != 0
}

// AsFloat converts an integer or float value to float64.
func (v Value) AsFloat() float64 {
	if v.Kind == KFloat {
		return v.F
	}
	return float64(v.I)
}

// AsInt converts an integer or float value to int64 (floats truncate).
func (v Value) AsInt() int64 {
	if v.Kind == KFloat {
		return int64(v.F)
	}
	return v.I
}

// Equal reports exact equality of two values (kind and payload).
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	if v.Kind == KFloat {
		return v.F == w.F
	}
	return v.I == w.I
}

func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KArr:
		return fmt.Sprintf("arr#%d", v.I)
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.Kind))
	}
}
