package traffic

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// TraceVersion is the current trace file format version. Loaders reject
// other versions rather than guess: a trace is a reproducibility
// artifact, and silently reinterpreting an old one would defeat it.
const TraceVersion = 1

// Outcome records what one request's run produced when the trace was
// captured live, keyed by the request's Seq. Replay uses it two ways:
// the deterministic fields (Status, Checksum, Cycles) are the golden
// values replay must reproduce, and Status "canceled" marks runs that a
// wall-clock deadline aborted — those never committed learner state, so
// replay skips executing them instead of depending on live timing.
type Outcome struct {
	Seq int64 `json:"seq"`
	// Status is "ok", "trap", or "canceled".
	Status string `json:"status"`
	// Checksum is the request's virtual-observable checksum (0 for
	// canceled runs, which have none).
	Checksum uint64 `json:"checksum,omitempty"`
	// Cycles is the run's total virtual cycles (0 for canceled runs).
	Cycles int64 `json:"cycles,omitempty"`
	// Trap is the normalized runtime-error message for Status "trap".
	Trap string `json:"trap,omitempty"`
}

// Run statuses recorded in Outcome.Status.
const (
	StatusOK       = "ok"
	StatusTrap     = "trap"
	StatusCanceled = "canceled"
)

// Trace is a complete replayable workload: the generator config it came
// from (if generated), the request sequence, and — once run — the
// recorded outcomes.
type Trace struct {
	Version  int       `json:"version"`
	Config   GenConfig `json:"config"`
	Requests []Request `json:"requests"`
	Outcomes []Outcome `json:"outcomes,omitempty"`

	// Memoized Seq→Outcome index (host-side, never serialized). Rebuilt
	// only when the Outcomes slice changes identity or length, so the
	// replay paths that consult it per request share one map instead of
	// re-materializing a fresh one per call.
	memoMu   sync.Mutex
	memo     map[int64]Outcome
	memoHead *Outcome
	memoLen  int
}

// OutcomeMap indexes the recorded outcomes by Seq. The result is shared
// and memoized — callers must treat it as read-only.
func (t *Trace) OutcomeMap() map[int64]Outcome {
	t.memoMu.Lock()
	defer t.memoMu.Unlock()
	var head *Outcome
	if len(t.Outcomes) > 0 {
		head = &t.Outcomes[0]
	}
	if t.memo != nil && t.memoHead == head && t.memoLen == len(t.Outcomes) {
		return t.memo
	}
	m := make(map[int64]Outcome, len(t.Outcomes))
	for _, o := range t.Outcomes {
		m[o.Seq] = o
	}
	t.memo, t.memoHead, t.memoLen = m, head, len(t.Outcomes)
	return m
}

// Save writes the trace to w as indented JSON. The encoding is
// deterministic (fixed field order, sorted map keys are not involved),
// so identical traces serialize to identical bytes — the property the
// golden replay tests pin.
func (t *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(t)
}

// Load reads a trace written by Save and validates its version and
// request numbering.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("traffic: decode trace: %w", err)
	}
	if t.Version != TraceVersion {
		return nil, fmt.Errorf("traffic: trace version %d, want %d", t.Version, TraceVersion)
	}
	for i, req := range t.Requests {
		if req.Seq != int64(i) {
			return nil, fmt.Errorf("traffic: request %d has seq %d; traces must be densely numbered", i, req.Seq)
		}
		if req.Tenant == "" || req.Bench == "" {
			return nil, fmt.Errorf("traffic: request %d missing tenant or bench", i)
		}
	}
	return &t, nil
}

// WriteFile saves the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
