package traffic

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Histogram is a log2-bucketed latency histogram. Bucket i counts
// observations v with 2^(i-1) ≤ v < 2^i (bucket 0 counts v ≤ 0 and
// v == 1 lands in bucket 1). Powers of two make the histogram exact and
// deterministic — no float binning — so two replays of the same trace
// produce byte-identical histograms, and the serving checksums can fold
// bucket counts in. It records virtual cycles, not wall time: wall-clock
// latency is reported alongside but never checksummed.
type Histogram struct {
	Buckets [65]int64 `json:"buckets"`
	Count   int64     `json:"count"`
	Sum     int64     `json:"sum"`
}

// bucketOf maps a value to its bucket index: 1 + floor(log2(v)).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.Buckets[bucketOf(v)]++
	h.Count++
	h.Sum += v
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.Buckets {
		h.Buckets[i] += c
	}
	h.Count += other.Count
	h.Sum += other.Sum
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// exclusive upper edge of the bucket containing the q-th observation.
// Bucket edges are exact powers of two, so the bound is deterministic
// and within 2× of the true value — tight enough for regression gating,
// stable enough for goldens.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count-1))
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			return 1 << uint(i) // exclusive upper edge of bucket i
		}
	}
	return 1<<63 - 1
}

// Mean returns the exact mean of the observations.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// String renders the non-empty buckets compactly, e.g.
// "count=12 sum=340 [2^4:3 2^5:9]".
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d sum=%d [", h.Count, h.Sum)
	first := true
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		if i == 0 {
			fmt.Fprintf(&b, "<=0:%d", c)
		} else {
			fmt.Fprintf(&b, "2^%d:%d", i-1, c)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// TenantHistograms aggregates per-tenant histograms with deterministic
// iteration order.
type TenantHistograms map[string]*Histogram

// Observe records v for tenant.
func (th TenantHistograms) Observe(tenant string, v int64) {
	h := th[tenant]
	if h == nil {
		h = &Histogram{}
		th[tenant] = h
	}
	h.Observe(v)
}

// Tenants returns the tenant names in sorted order.
func (th TenantHistograms) Tenants() []string {
	names := make([]string, 0, len(th))
	for name := range th {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
