package traffic

import (
	"fmt"
	"hash/maphash"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Histogram is a log2-bucketed latency histogram. Bucket i counts
// observations v with 2^(i-1) ≤ v < 2^i (bucket 0 counts v ≤ 0 and
// v == 1 lands in bucket 1). Powers of two make the histogram exact and
// deterministic — no float binning — so two replays of the same trace
// produce byte-identical histograms, and the serving checksums can fold
// bucket counts in. It records virtual cycles, not wall time: wall-clock
// latency is reported alongside but never checksummed.
type Histogram struct {
	Buckets [65]int64 `json:"buckets"`
	Count   int64     `json:"count"`
	Sum     int64     `json:"sum"`
}

// bucketOf maps a value to its bucket index: 1 + floor(log2(v)).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.Buckets[bucketOf(v)]++
	h.Count++
	h.Sum += v
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.Buckets {
		h.Buckets[i] += c
	}
	h.Count += other.Count
	h.Sum += other.Sum
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// exclusive upper edge of the bucket containing the q-th observation.
// Bucket edges are exact powers of two, so the bound is deterministic
// and within 2× of the true value — tight enough for regression gating,
// stable enough for goldens.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count-1))
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			return 1 << uint(i) // exclusive upper edge of bucket i
		}
	}
	return 1<<63 - 1
}

// Mean returns the exact mean of the observations.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// String renders the non-empty buckets compactly, e.g.
// "count=12 sum=340 [2^4:3 2^5:9]".
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d sum=%d [", h.Count, h.Sum)
	first := true
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		if i == 0 {
			fmt.Fprintf(&b, "<=0:%d", c)
		} else {
			fmt.Fprintf(&b, "2^%d:%d", i-1, c)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// AtomicHistogram is the contention-free counterpart of Histogram: every
// bucket is an atomic counter, so concurrent observers never serialize
// behind a histogram lock. Log2 bucketing makes each Observe commutative
// (an add per bucket plus count and sum), so a snapshot taken after all
// observers quiesce is byte-identical to the serial Histogram over the
// same multiset of values — bucket counts do not depend on observation
// order. Snapshots taken mid-flight are internally consistent only
// per-field (count may momentarily lag a bucket add); quiesce first when
// exactness matters, as the serving drain does.
type AtomicHistogram struct {
	buckets [65]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *AtomicHistogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot materializes the counters into a plain Histogram.
func (h *AtomicHistogram) Snapshot() Histogram {
	var out Histogram
	for i := range h.buckets {
		out.Buckets[i] = h.buckets[i].Load()
	}
	out.Count = h.count.Load()
	out.Sum = h.sum.Load()
	return out
}

// Quantile reads the q-quantile bound directly from the live counters —
// see Histogram.Quantile for the bound's meaning. Loads are not mutually
// consistent under concurrent Observe, which is fine for its one use:
// advisory Retry-After hints.
func (h *AtomicHistogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// tenantHistShards stripes the tenant→histogram map. 16 matches
// internal/stripe's default: enough to spread any plausible worker count,
// small enough that snapshotting all shards stays cheap.
const tenantHistShards = 16

var tenantHistSeed = maphash.MakeSeed()

type tenantHistShard struct {
	mu sync.RWMutex
	m  map[string]*AtomicHistogram
}

// ShardedTenantHistograms aggregates per-tenant atomic histograms behind
// a lock-striped map: the hot path takes one shard read lock to resolve
// the tenant's histogram, then updates it with atomic adds. The zero
// value is ready to use.
type ShardedTenantHistograms struct {
	shards [tenantHistShards]tenantHistShard
}

func (th *ShardedTenantHistograms) shard(tenant string) *tenantHistShard {
	return &th.shards[maphash.String(tenantHistSeed, tenant)%tenantHistShards]
}

// Observe records v for tenant, creating the tenant's histogram on first
// use.
func (th *ShardedTenantHistograms) Observe(tenant string, v int64) {
	sh := th.shard(tenant)
	sh.mu.RLock()
	h := sh.m[tenant]
	sh.mu.RUnlock()
	if h == nil {
		sh.mu.Lock()
		h = sh.m[tenant]
		if h == nil {
			if sh.m == nil {
				sh.m = make(map[string]*AtomicHistogram)
			}
			h = &AtomicHistogram{}
			sh.m[tenant] = h
		}
		sh.mu.Unlock()
	}
	h.Observe(v)
}

// Snapshot returns a copy of one tenant's histogram (zero histogram if
// the tenant was never observed).
func (th *ShardedTenantHistograms) Snapshot(tenant string) Histogram {
	sh := th.shard(tenant)
	sh.mu.RLock()
	h := sh.m[tenant]
	sh.mu.RUnlock()
	if h == nil {
		return Histogram{}
	}
	return h.Snapshot()
}

// Merged folds every tenant's histogram into one.
func (th *ShardedTenantHistograms) Merged() Histogram {
	var all Histogram
	for i := range th.shards {
		sh := &th.shards[i]
		sh.mu.RLock()
		for _, h := range sh.m {
			snap := h.Snapshot()
			all.Merge(&snap)
		}
		sh.mu.RUnlock()
	}
	return all
}

// Tenants returns every observed tenant name in sorted order.
func (th *ShardedTenantHistograms) Tenants() []string {
	var names []string
	for i := range th.shards {
		sh := &th.shards[i]
		sh.mu.RLock()
		for name := range sh.m {
			names = append(names, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// TenantHistograms aggregates per-tenant histograms with deterministic
// iteration order.
type TenantHistograms map[string]*Histogram

// Observe records v for tenant.
func (th TenantHistograms) Observe(tenant string, v int64) {
	h := th[tenant]
	if h == nil {
		h = &Histogram{}
		th[tenant] = h
	}
	h.Observe(v)
}

// Tenants returns the tenant names in sorted order.
func (th TenantHistograms) Tenants() []string {
	names := make([]string, 0, len(th))
	for name := range th {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
