package traffic

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden trace testdata")

// goldenConfig is the committed reference workload: 8 warm tenants, two
// benchmarks, Poisson arrivals, plus a cold tenant joining at 75%.
func goldenConfig() GenConfig {
	return GenConfig{
		Seed:          42,
		Requests:      96,
		Tenants:       8,
		Benches:       []string{"compress", "matmul"},
		MeanGapMicros: 500,
		ColdTenant:    "cold",
		ColdRequests:  8,
	}
}

const goldenPath = "testdata/golden_trace.json"

// TestGoldenTrace pins the generator: the same config must serialize to
// the exact committed bytes, release after release. Any intentional
// change to the generator or the trace format is a format break that
// must re-mint the golden (go test ./internal/traffic -update) and bump
// TraceVersion if old traces no longer replay identically.
func TestGoldenTrace(t *testing.T) {
	tr, err := Generate(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to mint the golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("generated trace differs from committed golden %s;\nif the generator changed intentionally, re-run with -update", goldenPath)
	}
}

// TestGenerateDeterministic regenerates the same config many times —
// including from parallel subtests — and demands identical request
// sequences: order, tenant assignment, inputs, arrivals.
func TestGenerateDeterministic(t *testing.T) {
	cfg := goldenConfig()
	ref, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		t.Run(fmt.Sprintf("par%d", i), func(t *testing.T) {
			t.Parallel()
			got, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Requests) != len(ref.Requests) {
				t.Fatalf("got %d requests, want %d", len(got.Requests), len(ref.Requests))
			}
			for j := range got.Requests {
				if got.Requests[j] != ref.Requests[j] {
					t.Fatalf("request %d differs:\ngot  %+v\nwant %+v", j, got.Requests[j], ref.Requests[j])
				}
			}
		})
	}
}

// TestTraceRoundTrip checks Save→Load is lossless, including recorded
// outcomes.
func TestTraceRoundTrip(t *testing.T) {
	tr, err := Generate(GenConfig{Seed: 7, Requests: 10, Tenants: 3, Benches: []string{"compress"}})
	if err != nil {
		t.Fatal(err)
	}
	tr.Outcomes = []Outcome{
		{Seq: 0, Status: StatusOK, Checksum: 0xdeadbeef, Cycles: 1234},
		{Seq: 3, Status: StatusTrap, Trap: "division by zero"},
		{Seq: 7, Status: StatusCanceled},
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(tr.Requests) {
		t.Fatalf("got %d requests, want %d", len(got.Requests), len(tr.Requests))
	}
	for i := range got.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d differs after round trip", i)
		}
	}
	om := got.OutcomeMap()
	if len(om) != 3 || om[3].Trap != "division by zero" || om[7].Status != StatusCanceled {
		t.Fatalf("outcomes lost in round trip: %+v", got.Outcomes)
	}
	// Re-save must be byte-identical: the trace format is canonical.
	var buf2 bytes.Buffer
	if err := got.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("trace serialization is not canonical across a round trip")
	}
}

// TestLoadRejects checks the loader's validation paths.
func TestLoadRejects(t *testing.T) {
	for _, tc := range []struct {
		name, blob string
	}{
		{"bad version", `{"version":99,"config":{},"requests":[]}`},
		{"sparse seqs", `{"version":1,"config":{},"requests":[{"seq":5,"tenant":"t0","bench":"b","input":0,"arrival_us":0}]}`},
		{"missing tenant", `{"version":1,"config":{},"requests":[{"seq":0,"tenant":"","bench":"b","input":0,"arrival_us":0}]}`},
		{"garbage", `{{{`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader([]byte(tc.blob))); err == nil {
				t.Fatal("Load accepted an invalid trace")
			}
		})
	}
}

// TestGenerateColdTenant checks the cold-start probe shape: the cold
// tenant's first request appears only after the configured fraction of
// warm traffic, and all its requests target the first benchmark.
func TestGenerateColdTenant(t *testing.T) {
	cfg := goldenConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := -1
	cold := 0
	for i, req := range tr.Requests {
		if req.Tenant == cfg.ColdTenant {
			cold++
			if first < 0 {
				first = i
			}
			if req.Bench != cfg.Benches[0] {
				t.Fatalf("cold request %d targets %q, want %q", i, req.Bench, cfg.Benches[0])
			}
		}
	}
	if cold != cfg.ColdRequests {
		t.Fatalf("cold tenant has %d requests, want %d", cold, cfg.ColdRequests)
	}
	if min := cfg.Requests / 2; first < min {
		t.Fatalf("cold tenant first appears at request %d, want ≥ %d", first, min)
	}
	// Warm tenants use the configured name shape and count.
	for i, req := range tr.Requests {
		if req.Tenant == cfg.ColdTenant {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(req.Tenant, "t%d", &n); err != nil || n < 0 || n >= cfg.Tenants {
			t.Fatalf("request %d has unexpected tenant %q", i, req.Tenant)
		}
	}
	// Arrivals are nondecreasing — replay pacing depends on it.
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].ArrivalMicros < tr.Requests[i-1].ArrivalMicros {
			t.Fatalf("arrival order violated at %d: %d after %d",
				i, tr.Requests[i].ArrivalMicros, tr.Requests[i-1].ArrivalMicros)
		}
	}
}

// TestHistogramBuckets checks exact bucket placement and the quantile
// upper-bound rule.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 7, 8, 1 << 20} {
		h.Observe(v)
	}
	wantBuckets := map[int]int64{0: 1, 1: 2, 2: 2, 3: 2, 4: 1, 21: 1}
	for i, c := range h.Buckets {
		if c != wantBuckets[i] {
			t.Fatalf("bucket %d has %d, want %d", i, c, wantBuckets[i])
		}
	}
	if h.Count != 9 || h.Sum != 26+1<<20 {
		t.Fatalf("count=%d sum=%d", h.Count, h.Sum)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %d, want 0", q)
	}
	if q := h.Quantile(0.5); q != 4 { // rank 4 lands in bucket 2 (values 2,3); upper edge 4
		t.Fatalf("q50 = %d, want 4", q)
	}
	if q := h.Quantile(1); q != 1<<21 {
		t.Fatalf("q1 = %d, want %d", q, int64(1)<<21)
	}
	// Merge doubles everything.
	h2 := h
	h.Merge(&h2)
	if h.Count != 18 || h.Buckets[2] != 4 {
		t.Fatalf("merge: count=%d b2=%d", h.Count, h.Buckets[2])
	}
}

// TestHistogramDeterministicAcrossOrder: bucket counts are independent
// of observation order — the property that lets parallel workers merge
// per-worker histograms into a deterministic aggregate.
func TestHistogramDeterministicAcrossOrder(t *testing.T) {
	vals := []int64{5, 100, 3, 77, 1 << 12, 9, 9, 2}
	var fwd, rev Histogram
	for _, v := range vals {
		fwd.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		rev.Observe(vals[i])
	}
	if fwd != rev {
		t.Fatalf("histogram depends on observation order:\nfwd %v\nrev %v", fwd, rev)
	}
}
