// Package traffic generates deterministic multi-tenant workloads for the
// serving front end (internal/serve) and records them as replayable
// traces. A trace is a pure function of its generator config: the same
// seed always yields the same request sequence — tenants, benchmarks,
// input choices, arrival offsets, deadlines — so a load test is an
// experiment, not an anecdote ("Virtual Machine Warmup Blows Hot and
// Cold", PAPERS.md, is the cautionary tale). Recorded traces round-trip
// through a versioned file format that `evolvevm replay` re-runs
// byte-identically in every virtual observable.
package traffic

import (
	"fmt"
	"math/rand"
	"sort"

	"evolvevm/internal/stats"
)

// Request is one serving request: which tenant asks for which benchmark
// input, when, and with what deadline. Seq is the request's global
// sequence number — the serving front end's single determinism source:
// state-chain order, epoch boundaries, and shared-tier publication are
// all functions of Seq, never of wall-clock arrival interleaving.
type Request struct {
	Seq    int64  `json:"seq"`
	Tenant string `json:"tenant"`
	Bench  string `json:"bench"`
	// Input indexes the benchmark's deterministic corpus (reduced modulo
	// the corpus size at serve time).
	Input int `json:"input"`
	// ArrivalMicros is the request's arrival offset from the start of the
	// trace, in microseconds of modeled time. Generators produce a
	// nondecreasing sequence; load drivers may pace by it or ignore it.
	ArrivalMicros int64 `json:"arrival_us"`
	// DeadlineMicros bounds the request's wall-clock service time once
	// admitted (0 = no deadline). Deadlines thread through the server to
	// vm.Machine.SetContext; an expired one aborts the run with a typed
	// *interp.CanceledError.
	DeadlineMicros int64 `json:"deadline_us,omitempty"`
}

// Chain returns the request's state-chain key: one serially-ordered
// learning chain exists per (tenant, benchmark).
func (r *Request) Chain() string { return r.Tenant + "/" + r.Bench }

// GenConfig parameterizes a deterministic workload.
type GenConfig struct {
	// Seed drives every random choice through named streams
	// (stats.Stream), so distinct concerns (mix, arrivals, deadlines)
	// draw from independent deterministic sources.
	Seed int64 `json:"seed"`
	// Requests is the trace length.
	Requests int `json:"requests"`
	// Tenants is the number of tenants, named t0..t{n-1}. Tenant load is
	// skewed (Zipf s=1.1): a realistic mix of heavy and light tenants.
	Tenants int `json:"tenants"`
	// Benches names the benchmarks in the mix, drawn uniformly per
	// request.
	Benches []string `json:"benches"`
	// MeanGapMicros is the mean inter-arrival gap of the Poisson arrival
	// process (exponential gaps), in microseconds of modeled time.
	// 0 means all requests arrive at time zero (a closed-loop hammer).
	MeanGapMicros int64 `json:"mean_gap_us,omitempty"`
	// DeadlineMicros, when nonzero, stamps every request with this
	// deadline.
	DeadlineMicros int64 `json:"deadline_us,omitempty"`
	// ColdTenant, when set, adds one extra tenant by this name whose
	// requests all fall in the trailing (1−ColdStart) fraction of the
	// trace — the cold-start probe: it first speaks after the regular
	// tenants have warmed the shared tier.
	ColdTenant string `json:"cold_tenant,omitempty"`
	// ColdStart is the fraction of the trace that elapses before the
	// cold tenant's first request (default 0.75 when ColdTenant is set).
	ColdStart float64 `json:"cold_start,omitempty"`
	// ColdRequests is how many requests the cold tenant issues (default
	// max(8, Requests/64)). They all target Benches[0], so its very
	// first request is measurable against a warmed shared tier.
	ColdRequests int `json:"cold_requests,omitempty"`
}

// Generate builds the deterministic request sequence for cfg.
func Generate(cfg GenConfig) (*Trace, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("traffic: config needs Requests > 0, got %d", cfg.Requests)
	}
	if cfg.Tenants <= 0 {
		return nil, fmt.Errorf("traffic: config needs Tenants > 0, got %d", cfg.Tenants)
	}
	if len(cfg.Benches) == 0 {
		return nil, fmt.Errorf("traffic: config needs at least one benchmark")
	}
	mix := stats.Stream(cfg.Seed, "traffic", "mix")
	arrivals := stats.Stream(cfg.Seed, "traffic", "arrivals")
	zipf := rand.NewZipf(stats.Stream(cfg.Seed, "traffic", "tenants"), 1.1, 1, uint64(cfg.Tenants-1))

	tr := &Trace{Version: TraceVersion, Config: cfg}
	clock := int64(0)
	for i := 0; i < cfg.Requests; i++ {
		if cfg.MeanGapMicros > 0 {
			clock += int64(arrivals.ExpFloat64() * float64(cfg.MeanGapMicros))
		}
		tr.Requests = append(tr.Requests, Request{
			Tenant:         fmt.Sprintf("t%d", zipf.Uint64()),
			Bench:          cfg.Benches[mix.Intn(len(cfg.Benches))],
			Input:          mix.Intn(1 << 16),
			ArrivalMicros:  clock,
			DeadlineMicros: cfg.DeadlineMicros,
		})
	}

	if cfg.ColdTenant != "" {
		frac := cfg.ColdStart
		if frac <= 0 || frac >= 1 {
			frac = 0.75
		}
		n := cfg.ColdRequests
		if n <= 0 {
			n = cfg.Requests / 64
			if n < 8 {
				n = 8
			}
		}
		cold := stats.Stream(cfg.Seed, "traffic", "cold")
		start := int(float64(len(tr.Requests)) * frac)
		startClock := int64(0)
		if start > 0 {
			startClock = tr.Requests[start-1].ArrivalMicros
		}
		for i := 0; i < n; i++ {
			// Scatter the cold requests over the trace tail, keeping the
			// overall arrival order sortable by time then insertion.
			at := startClock
			if cfg.MeanGapMicros > 0 {
				at += int64(cold.ExpFloat64() * float64(cfg.MeanGapMicros) * float64(i+1))
			}
			tr.Requests = append(tr.Requests, Request{
				Tenant:         cfg.ColdTenant,
				Bench:          cfg.Benches[0],
				Input:          cold.Intn(1 << 16),
				ArrivalMicros:  at,
				DeadlineMicros: cfg.DeadlineMicros,
			})
		}
		// Interleave by arrival time; stable sort keeps the generation
		// order among equal timestamps, so the result stays deterministic
		// even with MeanGapMicros == 0 (where the cold block lands after
		// the warm prefix it was placed behind).
		warmTail := tr.Requests[start:]
		sort.SliceStable(warmTail, func(i, j int) bool {
			return warmTail[i].ArrivalMicros < warmTail[j].ArrivalMicros
		})
	}
	for i := range tr.Requests {
		tr.Requests[i].Seq = int64(i)
	}
	return tr, nil
}
