package serve

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"evolvevm/internal/traffic"
)

// LoadConfig parameterizes a deterministic load test: a generated
// workload (traffic.GenConfig) served by a Server (Config). Everything
// the test observes virtually is a pure function of these two configs;
// only wall-clock throughput and latency vary with the host.
type LoadConfig struct {
	Traffic traffic.GenConfig
	Server  Config
	// Compare additionally replays the workload against an Isolated
	// server — the no-shared-learning control arm — to measure what the
	// shared tier buys a cold tenant's first request.
	Compare bool
	// Clients is the number of concurrent submission loops driving the
	// workload (default 1). Requests partition deterministically by chain
	// (ClientOf), so every client count produces byte-identical virtual
	// observables; more clients exercise — and on multi-core hosts
	// saturate — the admission path.
	Clients int
}

// LoadReport summarizes one load test. Checksums and virtual quantiles
// are deterministic; wall metrics are reporting-only.
type LoadReport struct {
	Requests int   `json:"requests"`
	Chains   int   `json:"chains"`
	Tenants  int   `json:"tenants"`
	Traps    int64 `json:"traps"`
	Canceled int64 `json:"canceled"`

	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"throughput_rps"`
	WallP50     int64   `json:"wall_p50_ns"`
	WallP99     int64   `json:"wall_p99_ns"`
	VirtualP50  int64   `json:"virtual_p50"`
	VirtualP99  int64   `json:"virtual_p99"`

	TenantChecksums map[string]uint64 `json:"tenant_checksums"`
	// ClientChecksums folds each submission client's outcomes (the
	// requests of the chains ClientOf assigns it) in seq order, keyed
	// "c0".."cN-1". Deterministic for a given trace and client count —
	// drift in any one fold localizes a divergence to one client's
	// partition.
	ClientChecksums map[string]uint64 `json:"client_checksums,omitempty"`
	// Checksum folds every tenant's checksum in sorted tenant order —
	// the single drift-gate value CI compares across runs.
	Checksum uint64 `json:"checksum"`

	// Cold-start comparison (Compare; requires Traffic.ColdTenant).
	ColdShared   *ColdStart `json:"cold_shared,omitempty"`
	ColdIsolated *ColdStart `json:"cold_isolated,omitempty"`
}

// ColdStart summarizes the cold tenant's prediction trajectory. The
// shared-vs-isolated benefit shows up two ways: FirstPredictedSeq
// arrives earlier (a tier-seeded learner is already past — or nearly
// past — the confidence threshold, an isolated one must climb from
// zero), and PredictedCount is higher over the same request sequence.
type ColdStart struct {
	Seq       int64   `json:"seq"`
	Predicted bool    `json:"predicted"`
	Cycles    int64   `json:"cycles"`
	Speedup   float64 `json:"speedup"`
	// FirstPredictedSeq is the sequence number of the tenant's first
	// predicted outcome, or -1 if no request ever predicted.
	FirstPredictedSeq int64 `json:"first_predicted_seq"`
	// PredictedCount counts predicted outcomes across all of the
	// tenant's deterministic requests.
	PredictedCount int `json:"predicted_count"`
	// Requests counts the tenant's deterministic outcomes.
	Requests int `json:"requests"`
}

// LoadTest generates the workload, serves it, and reports. The returned
// trace carries recorded outcomes and can be saved for byte-identical
// re-runs with Replay.
func LoadTest(ctx context.Context, cfg LoadConfig) (*LoadReport, *traffic.Trace, error) {
	tr, err := traffic.Generate(cfg.Traffic)
	if err != nil {
		return nil, nil, err
	}
	if len(cfg.Server.Benches) == 0 {
		cfg.Server.Benches = cfg.Traffic.Benches
	}
	s, err := New(cfg.Server)
	if err != nil {
		return nil, nil, err
	}
	defer s.Close()

	clients := cfg.Clients
	if clients < 1 {
		clients = 1
	}
	start := time.Now()
	if err := s.RunClients(ctx, tr, clients); err != nil {
		return nil, nil, err
	}
	wall := time.Since(start)
	if err := s.LedgerBalanced(); err != nil {
		return nil, nil, err
	}

	rep := report(s, len(tr.Requests), wall)
	rep.ClientChecksums = clientChecksums(s, tr, clients)
	tr.Outcomes = s.Outcomes()
	if cfg.Traffic.ColdTenant != "" {
		rep.ColdShared = coldStart(s, cfg.Traffic.ColdTenant)
	}

	if cfg.Compare {
		iso := cfg.Server
		iso.Isolated = true
		si, err := New(iso)
		if err != nil {
			return nil, nil, err
		}
		defer si.Close()
		if err := si.RunClients(ctx, tr, clients); err != nil {
			return nil, nil, err
		}
		if cfg.Traffic.ColdTenant != "" {
			rep.ColdIsolated = coldStart(si, cfg.Traffic.ColdTenant)
		}
	}
	return rep, tr, nil
}

func report(s *Server, requests int, wall time.Duration) *LoadReport {
	st := s.StatsNow()
	sums := s.TenantChecksums()
	tenants := make([]string, 0, len(sums))
	for t := range sums {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	var fold fnvState
	fold.sum = 14695981039346656037
	for _, t := range tenants {
		for _, b := range []byte(t) {
			fold.fold(uint64(b))
		}
		fold.fold(sums[t])
	}
	rep := &LoadReport{
		Requests:        requests,
		Chains:          st.Chains,
		Tenants:         st.Tenants,
		Traps:           st.Traps,
		Canceled:        st.Canceled,
		WallSeconds:     wall.Seconds(),
		WallP50:         st.WallP50,
		WallP99:         st.WallP99,
		VirtualP50:      st.VirtualP50,
		VirtualP99:      st.VirtualP99,
		TenantChecksums: sums,
		Checksum:        fold.sum,
	}
	if wall > 0 {
		rep.Throughput = float64(requests) / wall.Seconds()
	}
	return rep
}

// clientChecksums folds each replay client's outcomes in seq order.
func clientChecksums(s *Server, tr *traffic.Trace, clients int) map[string]uint64 {
	owner := make(map[int64]int, len(tr.Requests))
	for _, req := range tr.Requests {
		owner[req.Seq] = ClientOf(req.Chain(), clients)
	}
	folds := make([]fnvState, clients)
	for i := range folds {
		folds[i].sum = 14695981039346656037
	}
	for _, o := range s.out.all() {
		c, ok := owner[o.Seq]
		if !ok {
			continue
		}
		folds[c].fold(uint64(o.Seq))
		folds[c].fold(o.Checksum)
	}
	out := make(map[string]uint64, clients)
	for i := range folds {
		out[fmt.Sprintf("c%d", i)] = folds[i].sum
	}
	return out
}

// coldStart extracts the cold tenant's prediction trajectory.
func coldStart(s *Server, tenant string) *ColdStart {
	var resps []*Response
	for _, resp := range s.out.all() {
		if resp.Tenant != tenant || resp.Status == traffic.StatusCanceled {
			continue
		}
		resps = append(resps, resp)
	}
	if len(resps) == 0 {
		return nil
	}
	cs := &ColdStart{
		Seq:               resps[0].Seq,
		Predicted:         resps[0].Predicted,
		Cycles:            resps[0].Cycles,
		Speedup:           resps[0].Speedup,
		FirstPredictedSeq: -1,
		Requests:          len(resps),
	}
	for _, resp := range resps {
		if resp.Predicted {
			cs.PredictedCount++
			if cs.FirstPredictedSeq < 0 {
				cs.FirstPredictedSeq = resp.Seq
			}
		}
	}
	return cs
}

// WriteBench emits the report as go-bench-format lines so cmd/benchreport
// folds serving latency and throughput into the benchmark trajectory.
// ns/op is wall p50; p99-ns, req/s, and the virtual quantiles ride along
// as custom metrics.
func (r *LoadReport) WriteBench(w io.Writer, name string) {
	fmt.Fprintf(w, "Benchmark%s 	%8d	%12d ns/op	%12d p99-ns	%12.1f req/s	%12d vp50-cycles	%12d vp99-cycles\n",
		name, r.Requests, r.WallP50, r.WallP99, r.Throughput, r.VirtualP50, r.VirtualP99)
}
