package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RunRequestBody is the POST /v1/run payload.
type RunRequestBody struct {
	Tenant string `json:"tenant"`
	Bench  string `json:"bench"`
	Input  int    `json:"input"`
	// DeadlineMillis bounds wall-clock service time (0 = none). An
	// expired deadline aborts the run at a sample boundary and answers
	// 504 without committing any learner state.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// Wait opts into backpressure: block for a queue slot instead of
	// taking 429 when the queue is full.
	Wait bool `json:"wait,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST /v1/run   — execute one request (RunRequestBody → Response)
//	GET  /v1/stats — Stats snapshot
//	GET  /healthz  — liveness (503 while draining)
//
// Admission maps to status codes: queue full and tenant cap are 429 with
// a Retry-After hint, draining is 503, an expired request deadline is
// 504 (the Response body still carries the canceled status), a trap is
// 200 — a program fault is a legitimate, fully attributed outcome, not a
// server error.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.StatsNow())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var body RunRequestBody
	if err := readJSON(r.Body, &body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if body.Tenant == "" || s.protos[body.Bench] == nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "unknown tenant or benchmark"})
		return
	}
	deadline := time.Duration(body.DeadlineMillis) * time.Millisecond
	var resp *Response
	var err error
	if body.Wait {
		resp, err = s.Submit(r.Context(), body.Tenant, body.Bench, body.Input, deadline)
	} else {
		resp, err = s.TrySubmit(r.Context(), body.Tenant, body.Bench, body.Input, deadline)
	}
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantBusy):
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	if resp.Status == "canceled" {
		writeJSON(w, http.StatusGatewayTimeout, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// retryAfter estimates how long a rejected client should back off: the
// observed wall p50 latency, floored at one second (Retry-After is whole
// seconds). The histogram read is lock-free (advisory hint, exactness
// not needed).
func (s *Server) retryAfter() string {
	p50 := s.whist.Quantile(0.50)
	secs := int64(time.Duration(p50) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// maxRequestBody bounds POST bodies; run requests are a few dozen bytes.
const maxRequestBody = 1 << 20

// bufPool recycles encode/decode buffers across requests so the serving
// hot path doesn't allocate a fresh buffer (and, on the write side, a
// chunked-transfer state machine) per request.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readJSON decodes one JSON value from r through a pooled buffer.
func readJSON(r io.Reader, v any) error {
	buf := bufPool.Get().(*bytes.Buffer)
	defer putBuf(buf)
	if _, err := buf.ReadFrom(io.LimitReader(r, maxRequestBody)); err != nil {
		return err
	}
	return json.Unmarshal(buf.Bytes(), v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// putBuf returns a buffer to the pool unless it grew past the point
// where keeping it would pin memory.
func putBuf(buf *bytes.Buffer) {
	if buf.Cap() > 1<<16 {
		return
	}
	buf.Reset()
	bufPool.Put(buf)
}
