package serve

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"evolvevm/internal/harness"
	"evolvevm/internal/session"
	"evolvevm/internal/traffic"
)

func testConfig(workers int) Config {
	return Config{
		Workers:     workers,
		QueueDepth:  64,
		EpochLength: 16,
		Scenario:    harness.ScenarioEvolve,
		Seed:        42,
		CorpusSize:  6,
		Benches:     []string{"compress", "search"},
	}
}

func testTrace(t *testing.T, requests, tenants int) *traffic.Trace {
	t.Helper()
	tr, err := traffic.Generate(traffic.GenConfig{
		Seed:     42,
		Requests: requests,
		Tenants:  tenants,
		Benches:  []string{"compress", "search"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runTrace(t *testing.T, cfg Config, tr *traffic.Trace) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), tr); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDeterministicAcrossWorkers is the core serving-determinism claim:
// the same trace on 1, 2, and 8 workers yields identical per-tenant
// checksums, identical per-request outcomes, and identical latency
// histogram buckets. Virtual observables are a function of the trace,
// never of host concurrency.
func TestDeterministicAcrossWorkers(t *testing.T) {
	tr := testTrace(t, 96, 4)
	ref := runTrace(t, testConfig(1), tr)
	defer ref.Close()
	refSums := ref.TenantChecksums()
	refOut := ref.Outcomes()
	if len(refOut) != len(tr.Requests) {
		t.Fatalf("serial run completed %d of %d requests", len(refOut), len(tr.Requests))
	}
	if err := ref.LedgerBalanced(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 8} {
		s := runTrace(t, testConfig(workers), tr)
		sums := s.TenantChecksums()
		if len(sums) != len(refSums) {
			t.Fatalf("workers=%d saw %d tenants, want %d", workers, len(sums), len(refSums))
		}
		for tenant, want := range refSums {
			if got := sums[tenant]; got != want {
				t.Errorf("workers=%d tenant %s checksum %#x, want %#x", workers, tenant, got, want)
			}
		}
		out := s.Outcomes()
		for i, o := range out {
			if o != refOut[i] {
				t.Fatalf("workers=%d outcome %d = %+v, want %+v", workers, i, o, refOut[i])
			}
		}
		for tenant := range refSums {
			if got, want := s.TenantHistogram(tenant), ref.TenantHistogram(tenant); got != want {
				t.Errorf("workers=%d tenant %s histogram differs:\ngot  %v\nwant %v", workers, tenant, got, want)
			}
		}
		if err := s.LedgerBalanced(); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
		s.Close()
	}
}

// TestAsyncCompileServeEquivalence replays the same trace on a
// sync-compile server and on servers whose tier plans are built by the
// background pool — at 1 and 4 submission clients, 1 and 8 workers —
// and requires byte-identical tenant checksums and outcomes. Plan
// installation timing is host-side; it must never surface in a virtual
// observable. Also checks the pool actually ran (epoch-barrier prewarm
// plus hot-path submissions) and drained cleanly on Close.
func TestAsyncCompileServeEquivalence(t *testing.T) {
	tr := testTrace(t, 96, 4)
	refCfg := testConfig(1)
	refCfg.Substrate.SyncCompile = true
	// The process-wide code cache outlives servers: the sync oracle (and
	// earlier tests) would pre-install plans into the shared Codes and
	// leave the async servers nothing to build. Bypass it so every server
	// compiles its own plans and the background path actually runs.
	refCfg.Substrate.NoCodeCache = true
	ref := runTrace(t, refCfg, tr)
	defer ref.Close()
	refSums := ref.TenantChecksums()
	refOut := ref.Outcomes()

	for _, workers := range []int{1, 8} {
		for _, clients := range []int{1, 4} {
			cfg := testConfig(workers)
			cfg.Substrate.AsyncCompile = true
			cfg.Substrate.NoCodeCache = true
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if s.compile == nil {
				t.Fatal("async-compile server has no background pool")
			}
			if err := s.RunClients(context.Background(), tr, clients); err != nil {
				t.Fatal(err)
			}
			sums := s.TenantChecksums()
			for tenant, want := range refSums {
				if got := sums[tenant]; got != want {
					t.Errorf("workers=%d clients=%d tenant %s checksum %#x, want %#x",
						workers, clients, tenant, got, want)
				}
			}
			out := s.Outcomes()
			for i, o := range out {
				if o != refOut[i] {
					t.Fatalf("workers=%d clients=%d outcome %d = %+v, want %+v",
						workers, clients, i, o, refOut[i])
				}
			}
			if err := s.LedgerBalanced(); err != nil {
				t.Errorf("workers=%d clients=%d: %v", workers, clients, err)
			}
			// Counter conservation only holds at quiescence: wait out any
			// builds still in flight before reading the pool's books.
			s.compile.Drain()
			st := s.StatsNow()
			if st.Compile == nil {
				t.Fatal("async-compile server stats missing compile block")
			}
			if st.Compile.Enqueued == 0 {
				t.Errorf("workers=%d clients=%d: background pool never received a job", workers, clients)
			}
			if got := st.Compile.Built + st.Compile.LostInstalls + st.Compile.Dropped + st.Compile.Deduped; got != st.Compile.Enqueued {
				t.Errorf("workers=%d clients=%d: pool counters do not conserve: %d accounted, %d enqueued",
					workers, clients, got, st.Compile.Enqueued)
			}
			s.Close()
		}
	}
}

// TestConcurrentSubmittersMatchSerialReplay hammers a live recording
// server from goroutine tenants, then replays the recorded trace on a
// single worker: every per-tenant checksum must match. This is the
// record/replay contract — whatever interleaving live traffic produced,
// the trace it recorded reproduces the exact same observables serially.
func TestConcurrentSubmittersMatchSerialReplay(t *testing.T) {
	cfg := testConfig(8)
	cfg.Record = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const tenants, perTenant = 6, 12
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", ti)
			for i := 0; i < perTenant; i++ {
				bench := cfg.Benches[(ti+i)%len(cfg.Benches)]
				if _, err := s.Submit(context.Background(), tenant, bench, ti*31+i, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(ti)
	}
	wg.Wait()
	s.Drain()
	liveSums := s.TenantChecksums()
	tr := s.RecordedTrace()
	if len(tr.Requests) != tenants*perTenant || len(tr.Outcomes) != tenants*perTenant {
		t.Fatalf("recorded %d requests, %d outcomes; want %d", len(tr.Requests), len(tr.Outcomes), tenants*perTenant)
	}
	if err := s.LedgerBalanced(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	replayCfg := testConfig(1)
	replay := runTrace(t, replayCfg, tr)
	defer replay.Close()
	replaySums := replay.TenantChecksums()
	for tenant, want := range liveSums {
		if got := replaySums[tenant]; got != want {
			t.Errorf("tenant %s: replay checksum %#x, live %#x", tenant, got, want)
		}
	}
	// The recorded outcomes themselves must be reproduced verbatim.
	rout := replay.Outcomes()
	for i, o := range rout {
		if o != tr.Outcomes[i] {
			t.Fatalf("replay outcome %d = %+v, recorded %+v", i, o, tr.Outcomes[i])
		}
	}
}

// TestCheckpointNeverTearsUnderLoad saves session checkpoints while the
// pool is executing: every checkpoint must decode, and the final one
// (after drain) must carry exactly one unit per deterministic outcome.
// This is the serve-path regression test for the session.Save
// commit-lock fix — before it, a checkpoint could capture a learner that
// had absorbed a run whose unit was not yet recorded.
func TestCheckpointNeverTearsUnderLoad(t *testing.T) {
	cfg := testConfig(4)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr := testTrace(t, 64, 3)
	done := make(chan error, 1)
	go func() { done <- s.Run(context.Background(), tr) }()

	for {
		var buf bytes.Buffer
		if err := s.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := session.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("checkpoint does not decode: %v", err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if err := s.LedgerBalanced(); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := s.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			chk, err := session.Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := len(chk.UnitKeys()), len(tr.Requests); got != want {
				t.Fatalf("final checkpoint has %d units, want %d", got, want)
			}
			return
		default:
		}
	}
}

// TestAdmissionQueueFull: TrySubmit must reject with ErrQueueFull when
// the queue is saturated, and 429-style rejection counts as rejected in
// the stats. White-box: the queue is filled by marking slots in flight.
func TestAdmissionQueueFull(t *testing.T) {
	cfg := testConfig(2)
	cfg.QueueDepth = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.mu.Lock()
	s.inflight = cfg.QueueDepth
	s.mu.Unlock()
	if _, err := s.TrySubmit(context.Background(), "t0", "compress", 1, 0); err != ErrQueueFull {
		t.Fatalf("TrySubmit on full queue: %v, want ErrQueueFull", err)
	}
	s.mu.Lock()
	s.inflight = 0
	s.mu.Unlock()
	if rejected := s.rejected.Load(); rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}
	if resp, err := s.TrySubmit(context.Background(), "t0", "compress", 1, 0); err != nil || resp.Status != traffic.StatusOK {
		t.Fatalf("TrySubmit with space: resp=%+v err=%v", resp, err)
	}
}

// TestAdmissionTenantCap: one tenant at its in-flight cap is rejected
// with ErrTenantBusy — for Submit too, so a greedy tenant cannot occupy
// the backpressure queue — while other tenants still get through.
func TestAdmissionTenantCap(t *testing.T) {
	cfg := testConfig(2)
	cfg.TenantCap = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.mu.Lock()
	s.perTenant["greedy"] = 2
	s.mu.Unlock()
	if _, err := s.Submit(context.Background(), "greedy", "compress", 1, 0); err != ErrTenantBusy {
		t.Fatalf("Submit over tenant cap: %v, want ErrTenantBusy", err)
	}
	if _, err := s.TrySubmit(context.Background(), "greedy", "compress", 1, 0); err != ErrTenantBusy {
		t.Fatalf("TrySubmit over tenant cap: %v, want ErrTenantBusy", err)
	}
	if resp, err := s.Submit(context.Background(), "modest", "compress", 1, 0); err != nil || resp.Status != traffic.StatusOK {
		t.Fatalf("other tenant blocked: resp=%+v err=%v", resp, err)
	}
	s.mu.Lock()
	delete(s.perTenant, "greedy")
	s.mu.Unlock()
}

// TestAdmissionDeadlineExpires: an unmeetable deadline cancels the run
// at a sample boundary; the response reports status canceled, no learner
// state commits, and the drained server's ledger stays balanced (the
// canceled request completes no unit).
func TestAdmissionDeadlineExpires(t *testing.T) {
	cfg := testConfig(2)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := s.Submit(context.Background(), "t0", "compress", 1, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != traffic.StatusCanceled {
		t.Fatalf("status %q, want canceled", resp.Status)
	}
	if resp.Checksum != 0 || resp.Cycles != 0 {
		t.Fatalf("canceled run has observables: %+v", resp)
	}
	// A successful request after the canceled one: the chain's learner
	// must behave as if the canceled run never happened. Chain run count
	// stays a deterministic-outcome count.
	if resp, err := s.Submit(context.Background(), "t0", "compress", 1, 0); err != nil || resp.Status != traffic.StatusOK {
		t.Fatalf("follow-up: resp=%+v err=%v", resp, err)
	}
	s.Drain()
	if err := s.LedgerBalanced(); err != nil {
		t.Fatal(err)
	}
	runs := s.chains.get("t0/compress").runs
	if runs != 1 {
		t.Fatalf("chain counted %d runs, want 1 (canceled run must not count)", runs)
	}
}

// TestGracefulDrain: Close drains in-flight work, leaves the ledger
// balanced, and rejects later submissions with ErrClosed.
func TestGracefulDrain(t *testing.T) {
	cfg := testConfig(4)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Submit(context.Background(), fmt.Sprintf("t%d", i%3), "compress", i, 0)
			if err != nil && err != ErrClosed {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	s.Close()
	if err := s.LedgerBalanced(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), "t0", "compress", 1, 0); err != ErrClosed {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	if _, err := s.TrySubmit(context.Background(), "t0", "compress", 1, 0); err != ErrClosed {
		t.Fatalf("TrySubmit after Close: %v, want ErrClosed", err)
	}
}

// TestColdTenantBenefitsFromSharedTier is the cross-tenant learning
// acceptance check: a cold tenant joining after the shared tier has been
// published gets a predicted (learned) strategy on its very first
// request; with sharing disabled (Isolated) the same first request runs
// unpredicted, because a fresh learner has no confidence. Cold-start
// prediction is exactly what the shared tier buys.
func TestColdTenantBenefitsFromSharedTier(t *testing.T) {
	tr, err := traffic.Generate(traffic.GenConfig{
		Seed:         7,
		Requests:     80,
		Tenants:      3,
		Benches:      []string{"compress"},
		ColdTenant:   "cold",
		ColdRequests: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(4)
	cfg.Benches = []string{"compress"}
	cfg.EpochLength = 8

	firstColdPredicted := func(s *Server) bool {
		t.Helper()
		var first *Response
		for _, resp := range s.out.all() {
			if resp.Tenant == "cold" && (first == nil || resp.Seq < first.Seq) {
				first = resp
			}
		}
		if first == nil {
			t.Fatal("cold tenant never served")
		}
		return first.Predicted
	}

	shared := runTrace(t, cfg, tr)
	defer shared.Close()
	if !firstColdPredicted(shared) {
		t.Error("shared tier: cold tenant's first request was not predicted")
	}

	iso := cfg
	iso.Isolated = true
	isolated := runTrace(t, iso, tr)
	defer isolated.Close()
	if firstColdPredicted(isolated) {
		t.Error("isolated: cold tenant's first request was predicted without shared learning")
	}
}
