package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"evolvevm/internal/stripe"
	"evolvevm/internal/traffic"
	"evolvevm/internal/xicl"
)

// TestRunClientsDeterminism pins the multi-client replay contract: the
// same trace driven by 1, 2, 3, and 5 submission clients — on a
// multi-worker pool — yields byte-identical per-tenant checksums,
// outcomes, and latency histograms. Client count, like worker count, is
// a host knob, never a virtual observable.
func TestRunClientsDeterminism(t *testing.T) {
	tr := testTrace(t, 96, 4)
	ref := runTrace(t, testConfig(1), tr)
	defer ref.Close()
	refSums := ref.TenantChecksums()
	refOut := ref.Outcomes()

	for _, clients := range []int{2, 3, 5} {
		s, err := New(testConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunClients(context.Background(), tr, clients); err != nil {
			t.Fatal(err)
		}
		sums := s.TenantChecksums()
		if len(sums) != len(refSums) {
			t.Fatalf("clients=%d saw %d tenants, want %d", clients, len(sums), len(refSums))
		}
		for tenant, want := range refSums {
			if got := sums[tenant]; got != want {
				t.Errorf("clients=%d tenant %s checksum %#x, want %#x", clients, tenant, got, want)
			}
		}
		out := s.Outcomes()
		if len(out) != len(refOut) {
			t.Fatalf("clients=%d completed %d outcomes, want %d", clients, len(out), len(refOut))
		}
		for i, o := range out {
			if o != refOut[i] {
				t.Fatalf("clients=%d outcome %d = %+v, want %+v", clients, i, o, refOut[i])
			}
		}
		for tenant := range refSums {
			if got, want := s.TenantHistogram(tenant), ref.TenantHistogram(tenant); got != want {
				t.Errorf("clients=%d tenant %s histogram differs", clients, tenant)
			}
		}
		if err := s.LedgerBalanced(); err != nil {
			t.Errorf("clients=%d: %v", clients, err)
		}
		s.Close()
	}
}

// TestRunClientsCanceledAndSparseEpochs covers the epoch-barrier edge
// cases of multi-client replay: recorded cancellations are reproduced
// without executing, and an epoch whose every request was canceled
// produces no barrier (matching the serial loop's epoch-crossing rule) —
// the outcomes must still match the serial replay exactly.
func TestRunClientsCanceledAndSparseEpochs(t *testing.T) {
	tr := testTrace(t, 64, 3)
	// Mark all of epoch 1 (seqs 16..31 at EpochLength 16) and a scatter of
	// other seqs canceled, as a live deadline would have.
	for _, req := range tr.Requests {
		if (req.Seq >= 16 && req.Seq < 32) || req.Seq%13 == 5 {
			tr.Outcomes = append(tr.Outcomes, traffic.Outcome{
				Seq: req.Seq, Status: traffic.StatusCanceled,
			})
		}
	}
	ref := runTrace(t, testConfig(1), tr)
	defer ref.Close()
	refOut := ref.Outcomes()

	for _, clients := range []int{2, 4} {
		s, err := New(testConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunClients(context.Background(), tr, clients); err != nil {
			t.Fatal(err)
		}
		out := s.Outcomes()
		if len(out) != len(refOut) {
			t.Fatalf("clients=%d completed %d outcomes, want %d", clients, len(out), len(refOut))
		}
		for i, o := range out {
			if o != refOut[i] {
				t.Fatalf("clients=%d outcome %d = %+v, want %+v", clients, i, o, refOut[i])
			}
		}
		s.Close()
	}
}

// TestClientChecksumsPartitionTenants pins the per-client checksum
// fold: the folds are deterministic across runs and worker counts, and
// together cover every outcome exactly once (each chain belongs to
// exactly one client).
func TestClientChecksumsPartitionTenants(t *testing.T) {
	tr := testTrace(t, 64, 4)
	const clients = 3
	sums := make([]map[string]uint64, 0, 2)
	for _, workers := range []int{1, 4} {
		s, err := New(testConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunClients(context.Background(), tr, clients); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, clientChecksums(s, tr, clients))
		s.Close()
	}
	if len(sums[0]) != clients {
		t.Fatalf("got %d client folds, want %d", len(sums[0]), clients)
	}
	for c, want := range sums[0] {
		if got := sums[1][c]; got != want {
			t.Errorf("client %s checksum %#x on 4 workers, %#x on 1", c, got, want)
		}
	}
	// Every request's chain maps to exactly one client in range.
	for _, req := range tr.Requests {
		c := ClientOf(req.Chain(), clients)
		if c < 0 || c >= clients {
			t.Fatalf("ClientOf(%q, %d) = %d out of range", req.Chain(), clients, c)
		}
	}
}

// TestServeContentionBattery is the serving-path slice of the race
// battery: a multi-worker, multi-client replay runs to completion while
// GOMAXPROCS hammer goroutines pound the same striped structures the
// servers use — a sharded code-cache stand-in (stripe.Cache), a
// feature-vector cache, the server's atomic stat counters, and its
// histogram snapshots. Under -race this proves the hot path is free of
// data races; the serial oracle proves the concurrency is unobservable
// in virtual terms; and the cache stats prove the exact capacity bound
// and counter conservation survive the hammering.
func TestServeContentionBattery(t *testing.T) {
	tr := testTrace(t, 96, 4)
	ref := runTrace(t, testConfig(1), tr)
	defer ref.Close()
	refSums := ref.TenantChecksums()
	refOut := ref.Outcomes()

	s, err := New(testConfig(runtime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const cacheCap = 64
	sc := stripe.New[int, int](cacheCap)
	fv := xicl.NewFVCacheCap(cacheCap)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var lookups int64
	hammers := runtime.GOMAXPROCS(0)
	for w := 0; w < hammers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := int64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					// Fold this hammer's lookup count in for the conservation
					// check below.
					atomic.AddInt64(&lookups, n)
					return
				default:
				}
				key := (w*31 + i) % (cacheCap * 4)
				if _, ok := sc.Lookup(key); !ok {
					sc.Store(key, key)
				}
				n++
				sig := fmt.Sprintf("sig-%d", key)
				if _, _, ok := fv.Get(sig); !ok {
					fv.Put(sig, nil, int64(key))
				}
				if i%64 == 0 {
					// Stat reads ride the same striped/atomic state the
					// request path updates.
					_ = s.StatsNow()
					_ = s.TenantHistogram("t0")
					_ = s.retryAfter()
				}
			}
		}(w)
	}

	err = s.RunClients(context.Background(), tr, 4)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Virtual observables: byte-identical to the serial oracle.
	sums := s.TenantChecksums()
	for tenant, want := range refSums {
		if got := sums[tenant]; got != want {
			t.Errorf("tenant %s checksum %#x, want %#x", tenant, got, want)
		}
	}
	out := s.Outcomes()
	if len(out) != len(refOut) {
		t.Fatalf("completed %d outcomes, want %d", len(out), len(refOut))
	}
	for i, o := range out {
		if o != refOut[i] {
			t.Fatalf("outcome %d = %+v, want %+v", i, o, refOut[i])
		}
	}
	if err := s.LedgerBalanced(); err != nil {
		t.Error(err)
	}

	// Cache invariants: exact capacity bound and counter conservation.
	st := sc.Stats()
	if st.Entries > cacheCap {
		t.Errorf("stripe cache holds %d entries, capacity %d", st.Entries, cacheCap)
	}
	if st.Hits+st.Misses != lookups {
		t.Errorf("stripe cache hits %d + misses %d != lookups %d", st.Hits, st.Misses, lookups)
	}
	fst := fv.Stats()
	if fst.Entries > cacheCap {
		t.Errorf("fv cache holds %d entries, capacity %d", fst.Entries, cacheCap)
	}
}
