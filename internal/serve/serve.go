// Package serve is the multi-tenant serving front end: a long-running
// process that accepts concurrent run requests from many tenants,
// executes them through internal/exec off a bounded worker pool, and
// shares cross-run learning state between requests.
//
// # Determinism under concurrency
//
// Every tenant's virtual observables (results, traps, cycles, ledgers,
// latency-histogram buckets) are a pure function of the request trace
// and the server config — never of worker count, goroutine interleaving,
// or wall-clock time. Three rules make that hold:
//
//  1. Learning state is sharded into per-(tenant, benchmark) chains;
//     a chain's requests execute serially in global sequence order
//     (sched.Chains), so each learner sees a deterministic run sequence.
//  2. The shared cross-tenant tier is read and written only at epoch
//     barriers — every Config.EpochLength sequence numbers, a barrier
//     drains the pool and publishes, per benchmark, a snapshot of the
//     most-trained chain (ties to the lexicographically smallest
//     tenant). A chain created between barriers seeds from the snapshot
//     published at its epoch's start, so a cold tenant's first request
//     benefits from what other tenants already learned, by exactly the
//     same amount in every replay.
//  3. Wall-clock effects never commit: a deadline-expired run aborts
//     with *interp.CanceledError before the controller's OnRunEnd, so
//     cancellation cannot perturb learner state; recorded traces mark
//     canceled sequence numbers and replay skips them instead of
//     depending on live timing.
//
// Admission control keeps the pool bounded: a queue-depth cap with
// backpressure (Submit blocks, TrySubmit rejects for HTTP 429), per-
// tenant in-flight caps, and request deadlines threaded down to the
// engine's sample-boundary cancellation check.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"hash/maphash"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"evolvevm/internal/bgcompile"
	"evolvevm/internal/bytecode"
	"evolvevm/internal/exec"
	"evolvevm/internal/harness"
	"evolvevm/internal/interp"
	"evolvevm/internal/programs"
	"evolvevm/internal/sched"
	"evolvevm/internal/session"
	"evolvevm/internal/traffic"
	"evolvevm/internal/vm"
)

// Admission and lifecycle errors. The HTTP layer maps the first two to
// 429 with a Retry-After hint and ErrClosed to 503.
var (
	ErrQueueFull  = errors.New("serve: request queue full")
	ErrTenantBusy = errors.New("serve: tenant in-flight cap reached")
	ErrClosed     = errors.New("serve: server is draining")
)

// Config parameterizes a Server. The zero value of every field has a
// serviceable default; Benches defaults to all registered benchmarks.
type Config struct {
	// Workers bounds the execution pool (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-unfinished requests (default 256).
	// Submit blocks for a slot; TrySubmit rejects with ErrQueueFull.
	QueueDepth int
	// TenantCap bounds one tenant's in-flight requests (0 = unlimited).
	// Live admission only — replayed traces already passed admission.
	TenantCap int
	// EpochLength is the shared-tier publication cadence in sequence
	// numbers (default 32). Smaller epochs share learning faster but
	// drain the pool more often.
	EpochLength int
	// Scenario selects the optimization controller (default Evolve).
	Scenario harness.Scenario
	// Seed keys every deterministic choice: input corpora and, through
	// the trace, the workload itself.
	Seed int64
	// CorpusSize is the per-benchmark input corpus size (0 = default).
	CorpusSize int
	// Isolated disables the shared cross-tenant tier: chains never seed
	// from other tenants' learning. The control arm of the cold-start
	// experiment.
	Isolated bool
	// Substrate toggles the host-performance mechanisms for every run the
	// server executes. Virtual observables must not change with it — the
	// difftest soak serves identical traces across host tiers to prove so.
	Substrate exec.Substrate
	// Benches names the benchmarks this server accepts (default: all).
	Benches []string
	// Record captures every live-submitted request and outcome into a
	// trace retrievable with RecordedTrace.
	Record bool
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.EpochLength <= 0 {
		c.EpochLength = 32
	}
	if len(c.Benches) == 0 {
		for _, b := range programs.All() {
			c.Benches = append(c.Benches, b.Name)
		}
	}
}

// Response is one request's outcome. Every field except Wall is a
// virtual observable — deterministic for a given trace and config.
type Response struct {
	Seq     int64  `json:"seq"`
	Tenant  string `json:"tenant"`
	Bench   string `json:"bench"`
	InputID string `json:"input_id"`
	// Status is "ok", "trap", or "canceled" (traffic.Status*).
	Status string `json:"status"`
	// Trap is the normalized runtime-error message for status "trap".
	Trap string `json:"trap,omitempty"`
	// Value is the program result for status "ok".
	Value         bytecode.Value `json:"value"`
	Cycles        int64          `json:"cycles"`
	CompileCycles int64          `json:"compile_cycles"`
	Speedup       float64        `json:"speedup,omitempty"`
	// Predicted reports whether the discriminative guard passed and a
	// learned strategy was installed up front (Evolve scenario).
	Predicted bool `json:"predicted,omitempty"`
	// Checksum folds the virtual observables of this response into one
	// value; per-tenant folds of these are the replay-equivalence oracle.
	Checksum uint64 `json:"checksum"`
	// Wall is host wall time — reporting only, never checksummed.
	Wall time.Duration `json:"wall_ns"`
}

// chain is one (tenant, benchmark) learning chain. Its fields are only
// touched from the chain's serially-executing tasks, so it needs no lock
// of its own.
type chain struct {
	tenant string
	bench  string
	runner *harness.Runner
	// runs counts deterministic outcomes (ok and trap, never canceled) —
	// the shared-tier publication rule ranks chains by it.
	runs int
}

// shardCount stripes the chain and outcome maps. 16 matches
// internal/stripe's default — enough to spread any plausible worker
// count without making snapshot iteration expensive.
const shardCount = 16

var chainSeed = maphash.MakeSeed()

// chainShard is one stripe of the chain map; its mutex guards only the
// map structure, never chain state (chains are touched only from their
// serially-executing pool tasks).
type chainShard struct {
	mu sync.Mutex
	m  map[string]*chain
}

// chainMap is the lock-striped chain key → chain map. Different chains
// resolve on different shards, so concurrent tasks creating or looking
// up chains no longer serialize on one global chainMu.
type chainMap struct {
	shards [shardCount]chainShard
}

func (cm *chainMap) init() {
	for i := range cm.shards {
		cm.shards[i].m = make(map[string]*chain)
	}
}

func (cm *chainMap) shard(key string) *chainShard {
	return &cm.shards[maphash.String(chainSeed, key)%shardCount]
}

// get returns the chain for key, or nil.
func (cm *chainMap) get(key string) *chain {
	sh := cm.shard(key)
	sh.mu.Lock()
	ch := sh.m[key]
	sh.mu.Unlock()
	return ch
}

// all collects every chain across shards (order unspecified).
func (cm *chainMap) all() []*chain {
	var out []*chain
	for i := range cm.shards {
		sh := &cm.shards[i]
		sh.mu.Lock()
		for _, ch := range sh.m {
			out = append(out, ch)
		}
		sh.mu.Unlock()
	}
	return out
}

// outcomeShard is one stripe of the outcome map, sharded by seq.
type outcomeShard struct {
	mu sync.Mutex
	m  map[int64]*Response
}

// outcomeMap collects finished requests by seq behind striped locks, so
// concurrent completions on different workers no longer serialize on one
// global outMu. Per-tenant checksums fold outcomes in seq order at read
// time, so collection order (which is racy) never matters.
type outcomeMap struct {
	shards [shardCount]outcomeShard
}

func (om *outcomeMap) init() {
	for i := range om.shards {
		om.shards[i].m = make(map[int64]*Response)
	}
}

func (om *outcomeMap) put(resp *Response) {
	sh := &om.shards[uint64(resp.Seq)%shardCount]
	sh.mu.Lock()
	sh.m[resp.Seq] = resp
	sh.mu.Unlock()
}

// all returns every recorded response sorted by seq.
func (om *outcomeMap) all() []*Response {
	var out []*Response
	for i := range om.shards {
		sh := &om.shards[i]
		sh.mu.Lock()
		for _, resp := range sh.m {
			out = append(out, resp)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Server is the multi-tenant serving front end. Create with New, submit
// with Submit/TrySubmit (live) or Run/RunClients (trace replay), stop
// with Close.
type Server struct {
	cfg    Config
	protos map[string]*harness.Runner // per-benchmark prototype runners

	pool *sched.Chains
	sess *session.Session

	// compile is the background tier-compilation pool shared by every
	// chain's runs (nil: plans build inline at the promotion point).
	// Created when the substrate enables async compile; drained and
	// closed after the execution pool on shutdown.
	compile *bgcompile.Pool

	// mu is the admission lock: it orders sequence-number assignment,
	// admission accounting, epoch-barrier enqueueing, and (live) pool
	// submission, making pool queue order equal seq order — the
	// determinism source. It is intentionally narrow: completion
	// bookkeeping, outcome recording, and stat counters all live outside
	// it on striped or atomic state.
	mu        sync.Mutex
	space     *sync.Cond // signaled when queue slots free up
	drained   *sync.Cond // broadcast when inflight reaches zero
	waiters   int        // submitters blocked on space
	nextSeq   int64
	lastEpoch int64 // highest epoch whose barrier has been enqueued
	inflight  int
	perTenant map[string]int
	closed    bool

	// Hot-path stat counters: atomics, aggregated on read. Host-side
	// only — never virtual observables.
	rejected  atomic.Int64
	completed atomic.Int64
	traps     atomic.Int64
	canceled  atomic.Int64

	// tier is the shared cross-tenant state: per-benchmark snapshots
	// published only at epoch barriers. Tasks read it (RLock) when a new
	// chain is created; only the barrier writes it, with the pool empty.
	// This is the one remaining epoch-scoped lock on the request path.
	tierMu sync.RWMutex
	tier   map[string]json.RawMessage

	// chains and out are lock-striped; see chainMap and outcomeMap.
	chains chainMap
	out    outcomeMap

	// Latency histograms: per-tenant virtual cycles (striped map of
	// atomic histograms) and wall nanos (reporting only, one atomic
	// histogram).
	vhist traffic.ShardedTenantHistograms
	whist traffic.AtomicHistogram

	ledgerMu   sync.Mutex
	ledgerErrs []string

	traceMu sync.Mutex
	trace   *traffic.Trace // live recording (cfg.Record); set once in New
}

// New builds a server, constructing one prototype runner per benchmark.
// Prototypes are forked per chain, so corpus generation and program
// compilation happen once per benchmark, not once per tenant.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:       cfg,
		protos:    make(map[string]*harness.Runner, len(cfg.Benches)),
		pool:      sched.NewChains(cfg.Workers),
		sess:      session.New(),
		perTenant: make(map[string]int),
		tier:      make(map[string]json.RawMessage),
		lastEpoch: -1,
	}
	s.chains.init()
	s.out.init()
	s.space = sync.NewCond(&s.mu)
	s.drained = sync.NewCond(&s.mu)
	for _, name := range cfg.Benches {
		b := programs.ByName(name)
		if b == nil {
			return nil, fmt.Errorf("serve: unknown benchmark %q", name)
		}
		r, err := harness.NewRunner(b, cfg.CorpusSize, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("serve: %s: %w", name, err)
		}
		r.Substrate = cfg.Substrate
		r.Inspect = func(m *vm.Machine) {
			if err := m.LedgerError(); err != nil {
				s.ledgerMu.Lock()
				s.ledgerErrs = append(s.ledgerErrs, err.Error())
				s.ledgerMu.Unlock()
			}
		}
		s.protos[name] = r
	}
	if (cfg.Substrate.AsyncCompile || exec.AsyncCompileEnv()) && !cfg.Substrate.SyncCompile {
		// One pool per server, shared by every tenant chain: Fork copies
		// the prototype's Compile reference, so every run the server
		// executes enqueues its plan builds here instead of stalling a
		// request on inline compilation.
		s.compile = bgcompile.NewPool(0, 0)
		for _, r := range s.protos {
			r.Compile = s.compile
		}
	}
	if cfg.Record {
		s.trace = &traffic.Trace{Version: traffic.TraceVersion}
	}
	return s, nil
}

// Submit executes one live request, blocking for a queue slot under
// backpressure and for the response. A per-tenant cap rejects rather
// than blocks (a capped tenant should back off, not pile up).
func (s *Server) Submit(ctx context.Context, tenant, bench string, input int, deadline time.Duration) (*Response, error) {
	return s.submitLive(ctx, tenant, bench, input, deadline, true)
}

// TrySubmit is Submit without backpressure: a full queue or a capped
// tenant rejects immediately (ErrQueueFull / ErrTenantBusy) so the HTTP
// layer can answer 429 with Retry-After.
func (s *Server) TrySubmit(ctx context.Context, tenant, bench string, input int, deadline time.Duration) (*Response, error) {
	return s.submitLive(ctx, tenant, bench, input, deadline, false)
}

func (s *Server) submitLive(ctx context.Context, tenant, bench string, input int, deadline time.Duration, wait bool) (*Response, error) {
	if tenant == "" || s.protos[bench] == nil {
		return nil, fmt.Errorf("serve: bad request: tenant %q bench %q", tenant, bench)
	}
	deadlineMicros := deadline.Microseconds()
	if deadline > 0 && deadlineMicros == 0 {
		deadlineMicros = 1 // round sub-microsecond deadlines up, not to "none"
	}
	req := traffic.Request{
		Tenant:         tenant,
		Bench:          bench,
		Input:          input,
		DeadlineMicros: deadlineMicros,
	}
	done := make(chan *Response, 1)

	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		if s.cfg.TenantCap > 0 && s.perTenant[tenant] >= s.cfg.TenantCap {
			s.mu.Unlock()
			s.rejected.Add(1)
			return nil, ErrTenantBusy
		}
		if s.inflight < s.cfg.QueueDepth {
			break
		}
		if !wait {
			s.mu.Unlock()
			s.rejected.Add(1)
			return nil, ErrQueueFull
		}
		s.waiters++
		s.space.Wait()
		s.waiters--
	}
	req.Seq = s.nextSeq
	s.nextSeq++
	s.admitLocked(req, done)
	s.mu.Unlock()

	select {
	case resp := <-done:
		return resp, nil
	case <-ctx.Done():
		// The request is already admitted and will run to completion (or
		// its own deadline); only this caller stops waiting.
		return nil, &interp.CanceledError{Cause: ctx.Err()}
	}
}

// admitLocked records, epoch-gates, and enqueues one admitted request.
// Caller holds s.mu; the queue slot is already reserved.
func (s *Server) admitLocked(req traffic.Request, done chan<- *Response) {
	s.inflight++
	s.perTenant[req.Tenant]++
	if s.trace != nil {
		s.traceMu.Lock()
		s.trace.Requests = append(s.trace.Requests, req)
		s.traceMu.Unlock()
	}
	if epoch := req.Seq / int64(s.cfg.EpochLength); epoch > s.lastEpoch {
		s.lastEpoch = epoch
		if epoch > 0 {
			s.pool.Barrier(s.publish)
		}
	}
	s.pool.Go(req.Chain(), func() {
		resp := s.execute(req)
		s.finish(req, resp)
		if done != nil {
			done <- resp
		}
	})
}

// Run executes a trace in sequence order through the pool and drains.
// Sequence numbers recorded as canceled are reproduced as canceled
// without executing — live cancellation is a wall-clock event, and
// replay must not depend on wall clocks. Tenant caps don't apply (the
// trace already passed admission when it was recorded); queue-depth
// backpressure does, bounding memory.
func (s *Server) Run(ctx context.Context, tr *traffic.Trace) error {
	return s.RunClients(ctx, tr, 1)
}

// ClientOf deterministically assigns a chain to one of n replay clients.
// The hash is FNV-1a of the chain key — stable across processes and
// machines, so recorded per-client checksums compare across runs (unlike
// maphash, which is seeded per process).
func ClientOf(chainKey string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(chainKey))
	return int(h.Sum32() % uint32(n))
}

// RunClients executes a trace through the pool using n concurrent
// submission loops and drains. Virtual observables are byte-identical to
// Run's for every n:
//
//   - Requests are partitioned by chain (ClientOf), so each chain's
//     requests are submitted by one client in seq order — and a chain's
//     tasks execute serially in submission order (sched.Chains), which
//     preserves rule 1 of the determinism argument.
//   - Submission proceeds in epoch lockstep: no client submits a request
//     of epoch k+1 until every client has finished submitting epoch k.
//     The last client to reach the epoch latch enqueues the epoch
//     barrier while it still holds the latch, so the barrier lands
//     between the last epoch-k submission and the first epoch-k+1
//     submission — exactly where the serial loop puts it. Barriers are
//     enqueued only for epochs that have at least one executed
//     (non-canceled) request, matching the serial loop's epoch-crossing
//     rule.
//
// Queue-depth backpressure cannot deadlock the latch: a client blocked
// on a queue slot is waiting on running tasks, all of which come from
// epochs whose submissions already passed the latch.
func (s *Server) RunClients(ctx context.Context, tr *traffic.Trace, n int) error {
	if n < 1 {
		n = 1
	}
	if len(tr.Requests) == 0 {
		s.Drain()
		return nil
	}
	om := tr.OutcomeMap()
	for _, req := range tr.Requests {
		if s.protos[req.Bench] == nil {
			return fmt.Errorf("serve: trace request %d wants unserved benchmark %q", req.Seq, req.Bench)
		}
	}
	epochLen := int64(s.cfg.EpochLength)
	var maxSeq int64
	executed := make(map[int64]bool) // epochs with ≥1 non-canceled request
	for _, req := range tr.Requests {
		if req.Seq > maxSeq {
			maxSeq = req.Seq
		}
		if o, ok := om[req.Seq]; !ok || o.Status != traffic.StatusCanceled {
			executed[req.Seq/epochLen] = true
		}
	}
	epochs := maxSeq/epochLen + 1

	// parts[c][e] is client c's epoch-e requests. Trace requests are
	// densely numbered (traffic.Load validates), so iteration order is
	// seq order and each slice stays seq-sorted.
	parts := make([][][]traffic.Request, n)
	for c := range parts {
		parts[c] = make([][]traffic.Request, epochs)
	}
	for _, req := range tr.Requests {
		c := ClientOf(req.Chain(), n)
		e := req.Seq / epochLen
		parts[c][e] = append(parts[c][e], req)
	}

	// Mirror the serial loop's lastEpoch bookkeeping: epoch 0 is current
	// as soon as its first request is admitted, with no barrier.
	if executed[0] {
		s.mu.Lock()
		if s.lastEpoch < 0 {
			s.lastEpoch = 0
		}
		s.mu.Unlock()
	}

	var (
		latch    = newEpochLatch(n)
		aborted  atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	abort := func(err error) {
		errOnce.Do(func() { firstErr = err })
		aborted.Store(true)
	}
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for e := int64(0); e < epochs; e++ {
				if !aborted.Load() {
					for _, req := range parts[c][e] {
						if err := ctx.Err(); err != nil {
							abort(err)
							break
						}
						if o, ok := om[req.Seq]; ok && o.Status == traffic.StatusCanceled {
							s.record(&Response{
								Seq: req.Seq, Tenant: req.Tenant, Bench: req.Bench,
								Status: traffic.StatusCanceled,
							}, 0)
							continue
						}
						req := req
						req.DeadlineMicros = 0 // statuses come from the record, not live timing
						if err := s.admitReplay(req); err != nil {
							abort(err)
							break
						}
					}
				}
				next := e + 1
				latch.arrive(func() {
					if aborted.Load() || next >= epochs || !executed[next] {
						return
					}
					s.pool.Barrier(s.publish)
					s.mu.Lock()
					if next > s.lastEpoch {
						s.lastEpoch = next
					}
					s.mu.Unlock()
				})
			}
		}(c)
	}
	wg.Wait()
	s.Drain()
	return firstErr
}

// admitReplay admits one replayed request and enqueues its task. Unlike
// the live path, pool submission happens outside s.mu: per-chain order
// is already guaranteed by the owning client's serial submission loop,
// and cross-chain pool order is irrelevant between barriers.
func (s *Server) admitReplay(req traffic.Request) error {
	s.mu.Lock()
	for !s.closed && s.inflight >= s.cfg.QueueDepth {
		s.waiters++
		s.space.Wait()
		s.waiters--
	}
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if req.Seq >= s.nextSeq {
		s.nextSeq = req.Seq + 1
	}
	s.inflight++
	s.perTenant[req.Tenant]++
	s.mu.Unlock()
	if s.trace != nil {
		s.traceMu.Lock()
		s.trace.Requests = append(s.trace.Requests, req)
		s.traceMu.Unlock()
	}
	s.pool.Go(req.Chain(), func() {
		resp := s.execute(req)
		s.finish(req, resp)
	})
	return nil
}

// epochLatch is a reusable rendezvous for the replay clients: every
// party arrives, the last arriver runs onLast while the latch is still
// held (so no party races ahead of the barrier it enqueues), then all
// parties release into the next round together.
type epochLatch struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	round   int64
}

func newEpochLatch(parties int) *epochLatch {
	l := &epochLatch{parties: parties}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *epochLatch) arrive(onLast func()) {
	l.mu.Lock()
	l.arrived++
	if l.arrived == l.parties {
		onLast()
		l.arrived = 0
		l.round++
		l.cond.Broadcast()
		l.mu.Unlock()
		return
	}
	r := l.round
	for l.round == r {
		l.cond.Wait()
	}
	l.mu.Unlock()
}

// execute runs one admitted request on its learning chain. It executes
// inside the chain's serially-ordered pool task.
func (s *Server) execute(req traffic.Request) *Response {
	ch := s.chain(req)
	in := ch.runner.Inputs[((req.Input%len(ch.runner.Inputs))+len(ch.runner.Inputs))%len(ch.runner.Inputs)]

	ctx := context.Background()
	if req.DeadlineMicros > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMicros)*time.Microsecond)
		defer cancel()
	}

	resp := &Response{Seq: req.Seq, Tenant: req.Tenant, Bench: req.Bench, InputID: in.ID}
	start := time.Now()

	// BeginRun/EndRun bracket the learner mutation and the session unit
	// so checkpoints never tear between them (see session.BenchState).
	// Only cancellation skips the unit: a canceled run committed nothing
	// and replay reproduces it without executing, so it must leave no
	// ledger trace; every deterministic outcome completes exactly one.
	ch.runner.State.BeginRun()
	res, err := ch.runner.RunRequest(ctx, s.cfg.Scenario, in)
	var cerr *interp.CanceledError
	canceled := err != nil && errors.As(err, &cerr)
	if !canceled {
		s.sess.CompleteUnit(fmt.Sprintf("seq:%d", req.Seq), nil)
		ch.runs++
	}
	ch.runner.State.EndRun()
	resp.Wall = time.Since(start)

	if canceled {
		resp.Status = traffic.StatusCanceled
		return resp
	}
	if err != nil {
		// Configuration errors (bad feature spec etc.) surface as traps
		// with the error text: deterministic, answerable outcomes.
		resp.Status = traffic.StatusTrap
		resp.Trap = err.Error()
		resp.Checksum = checksum(resp)
		return resp
	}
	resp.Cycles = res.Cycles
	resp.CompileCycles = res.CompileCycles
	resp.Speedup = res.Speedup
	if res.Evolve != nil {
		resp.Predicted = res.Evolve.Predicted
	}
	if res.Trap != "" {
		resp.Status = traffic.StatusTrap
		resp.Trap = res.Trap
	} else {
		resp.Status = traffic.StatusOK
		resp.Value = res.Result
	}
	resp.Checksum = checksum(resp)
	return resp
}

// chain returns (or creates) the request's learning chain. Creation
// seeds from the shared tier's snapshot for the benchmark — published at
// the current epoch's barrier — unless the server is Isolated.
func (s *Server) chain(req traffic.Request) *chain {
	key := req.Chain()
	sh := s.chains.shard(key)
	sh.mu.Lock()
	ch := sh.m[key]
	if ch == nil {
		ch = &chain{
			tenant: req.Tenant,
			bench:  req.Bench,
			runner: s.protos[req.Bench].Fork(),
		}
		sh.m[key] = ch
		sh.mu.Unlock()
		if !s.cfg.Isolated {
			s.tierMu.RLock()
			blob := s.tier[req.Bench]
			s.tierMu.RUnlock()
			if blob != nil {
				// A failed seed leaves the chain cold — it still serves.
				_ = ch.runner.State.Restore(blob)
			}
		}
		// Attach after seeding so a checkpoint taken later captures the
		// chain under its key. Attach only takes the session lock.
		_ = s.sess.Attach(key, ch.runner.State)
		return ch
	}
	sh.mu.Unlock()
	return ch
}

// publish is the epoch barrier body: with the pool drained, snapshot the
// most-trained chain of each benchmark (ties to the smallest tenant
// name) into the shared tier. Runs and tenant names are deterministic,
// so the published snapshots are too.
func (s *Server) publish() {
	// Pre-warm host execution plans for every hot cached form, so cold
	// tenants inherit compiled code along with the learned state below.
	// Plans are host-side and process-shared through the code cache, so
	// this runs even in Isolated mode — it cannot leak virtual state
	// between tenants, only wall-clock warmth.
	if s.compile != nil {
		harness.WarmCompiledPlans(s.compile,
			!s.cfg.Substrate.NoFusion, !s.cfg.Substrate.NoCallInline)
	}
	if s.cfg.Isolated {
		return
	}
	// Best-chain selection is a max over (runs desc, tenant asc) — order-
	// independent, so shard iteration order doesn't matter.
	best := make(map[string]*chain)
	for _, ch := range s.chains.all() {
		if ch.runs == 0 {
			continue
		}
		b := best[ch.bench]
		if b == nil || ch.runs > b.runs || (ch.runs == b.runs && ch.tenant < b.tenant) {
			best[ch.bench] = ch
		}
	}
	for bench, ch := range best {
		blob, err := ch.runner.State.Snapshot()
		if err != nil {
			continue
		}
		s.tierMu.Lock()
		s.tier[bench] = blob
		s.tierMu.Unlock()
	}
}

// finish releases the request's admission slot and records its outcome.
// Recording happens entirely on striped/atomic state; only the slot
// release takes s.mu, and it wakes exactly one blocked submitter (plus
// the drain waiters when the pool empties) instead of broadcasting to
// every waiter on every completion.
func (s *Server) finish(req traffic.Request, resp *Response) {
	s.record(resp, resp.Wall.Nanoseconds())
	s.mu.Lock()
	s.inflight--
	s.perTenant[req.Tenant]--
	if s.perTenant[req.Tenant] == 0 {
		delete(s.perTenant, req.Tenant)
	}
	if s.waiters > 0 {
		s.space.Signal()
	}
	if s.inflight == 0 {
		s.drained.Broadcast()
	}
	s.mu.Unlock()
}

func (s *Server) record(resp *Response, wallNanos int64) {
	s.out.put(resp)
	s.completed.Add(1)
	switch resp.Status {
	case traffic.StatusTrap:
		s.traps.Add(1)
	case traffic.StatusCanceled:
		s.canceled.Add(1)
	}
	if resp.Status != traffic.StatusCanceled {
		s.vhist.Observe(resp.Tenant, resp.Cycles)
	}
	if wallNanos > 0 {
		s.whist.Observe(wallNanos)
	}
	if s.trace != nil {
		s.traceMu.Lock()
		s.trace.Outcomes = append(s.trace.Outcomes, traffic.Outcome{
			Seq: resp.Seq, Status: resp.Status, Checksum: resp.Checksum,
			Cycles: resp.Cycles, Trap: resp.Trap,
		})
		s.traceMu.Unlock()
	}
}

// Drain blocks until every admitted request has finished.
func (s *Server) Drain() {
	s.mu.Lock()
	for s.inflight > 0 {
		s.drained.Wait()
	}
	s.mu.Unlock()
	s.pool.Wait()
}

// Close drains and shuts the pool down. Further submissions fail with
// ErrClosed; Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.space.Broadcast()
	s.mu.Unlock()
	s.Drain()
	s.pool.Close()
	// The compile pool closes after the execution pool: with no run left
	// to submit builds, Close drains the queued jobs gracefully — plans
	// land in the process-shared code cache for the next server.
	if s.compile != nil {
		s.compile.Close()
	}
}

// checksum folds a response's virtual observables into one value. Wall
// time deliberately excluded.
func checksum(resp *Response) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%s|%s|%d|%d|%d|%d|%t",
		resp.Tenant, resp.Bench, resp.InputID, resp.Status, resp.Trap,
		resp.Value.Kind, resp.Value.I, math.Float64bits(resp.Value.F),
		resp.Cycles, resp.Predicted)
	return h.Sum64()
}

// TenantChecksums folds every tenant's outcomes — in sequence order, so
// the value is independent of completion interleaving — into one
// checksum per tenant. Two servers that serve the same trace must agree
// on every fold, whatever their worker counts.
func (s *Server) TenantChecksums() map[string]uint64 {
	hs := make(map[string]*fnvState)
	for _, o := range s.out.all() {
		st := hs[o.Tenant]
		if st == nil {
			st = &fnvState{sum: 14695981039346656037}
			hs[o.Tenant] = st
		}
		st.fold(uint64(o.Seq))
		st.fold(o.Checksum)
	}
	out := make(map[string]uint64, len(hs))
	for t, st := range hs {
		out[t] = st.sum
	}
	return out
}

// fnvState is an incremental FNV-1a fold over uint64 words.
type fnvState struct{ sum uint64 }

func (f *fnvState) fold(v uint64) {
	for i := 0; i < 8; i++ {
		f.sum ^= v & 0xff
		f.sum *= 1099511628211
		v >>= 8
	}
}

// Outcomes returns every recorded outcome sorted by sequence number.
func (s *Server) Outcomes() []traffic.Outcome {
	all := s.out.all()
	out := make([]traffic.Outcome, 0, len(all))
	for _, resp := range all {
		out = append(out, traffic.Outcome{
			Seq: resp.Seq, Status: resp.Status, Checksum: resp.Checksum,
			Cycles: resp.Cycles, Trap: resp.Trap,
		})
	}
	return out
}

// RecordedTrace returns the live-recorded trace (Config.Record), with
// requests and outcomes sorted by seq — ready for WriteFile and later
// Run. (Multi-client replay appends requests in admission-race order, so
// both slices need the sort.)
func (s *Server) RecordedTrace() *traffic.Trace {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if s.trace == nil {
		return nil
	}
	sort.Slice(s.trace.Requests, func(i, j int) bool {
		return s.trace.Requests[i].Seq < s.trace.Requests[j].Seq
	})
	sort.Slice(s.trace.Outcomes, func(i, j int) bool {
		return s.trace.Outcomes[i].Seq < s.trace.Outcomes[j].Seq
	})
	return s.trace
}

// Stats is a point-in-time summary of the server's work.
type Stats struct {
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Traps     int64 `json:"traps"`
	Canceled  int64 `json:"canceled"`
	InFlight  int   `json:"in_flight"`
	Tenants   int   `json:"tenants"`
	Chains    int   `json:"chains"`
	Epoch     int64 `json:"epoch"`
	// Virtual-cycle latency quantiles (deterministic).
	VirtualP50 int64 `json:"virtual_p50"`
	VirtualP99 int64 `json:"virtual_p99"`
	// Wall-clock latency quantiles in nanoseconds (reporting only).
	WallP50 int64 `json:"wall_p50_ns"`
	WallP99 int64 `json:"wall_p99_ns"`
	// Trace reports the register-trace tier's activity — builds,
	// per-reason degradations, head/OSR entries, side exits, deopts,
	// guard failures, inlined calls. Process-global (the counters
	// aggregate every engine in the process, not only this server's);
	// host-side diagnostics only, never a virtual observable.
	Trace interp.TraceStats `json:"trace"`

	// Compile reports the background compilation pool — queue depth and
	// high water, enqueued/built/dropped/deduped counts, per-kind
	// build-time quantiles. Nil when the server compiles synchronously.
	Compile *bgcompile.Stats `json:"compile,omitempty"`
	// PlanInstall counts plan-install CAS races lost process-wide
	// (build work paid for a plan another builder landed first).
	PlanInstall interp.PlanInstallStats `json:"plan_install"`
}

// StatsNow reads the current stats. The hot-path counters are atomics,
// so this never blocks a request; quantiles come from histogram
// snapshots.
func (s *Server) StatsNow() Stats {
	var st Stats
	s.mu.Lock()
	st.Admitted = s.nextSeq
	st.InFlight = s.inflight
	st.Epoch = s.lastEpoch
	s.mu.Unlock()
	st.Rejected = s.rejected.Load()
	st.Completed = s.completed.Load()
	st.Traps = s.traps.Load()
	st.Canceled = s.canceled.Load()
	chains := s.chains.all()
	st.Chains = len(chains)
	tenants := make(map[string]bool)
	for _, ch := range chains {
		tenants[ch.tenant] = true
	}
	st.Tenants = len(tenants)
	all := s.vhist.Merged()
	st.VirtualP50 = all.Quantile(0.50)
	st.VirtualP99 = all.Quantile(0.99)
	wall := s.whist.Snapshot()
	st.WallP50 = wall.Quantile(0.50)
	st.WallP99 = wall.Quantile(0.99)
	st.Trace = interp.ReadTraceStats()
	st.PlanInstall = interp.ReadPlanInstallStats()
	if s.compile != nil {
		cst := s.compile.Stats()
		st.Compile = &cst
	}
	return st
}

// TenantHistogram returns a copy of one tenant's virtual-cycle latency
// histogram (zero histogram if the tenant never completed a request).
func (s *Server) TenantHistogram(tenant string) traffic.Histogram {
	return s.vhist.Snapshot(tenant)
}

// LedgerBalanced verifies the session ledger after a drain: every
// deterministic outcome (ok or trap) completed exactly one session unit,
// and no per-run cycle-ledger cross-check failed. It reports an error
// describing the first imbalance found.
func (s *Server) LedgerBalanced() error {
	deterministic := int(s.completed.Load() - s.canceled.Load())
	s.ledgerMu.Lock()
	nledger := len(s.ledgerErrs)
	var first string
	if nledger > 0 {
		first = s.ledgerErrs[0]
	}
	s.ledgerMu.Unlock()
	if nledger > 0 {
		return fmt.Errorf("serve: %d per-run ledger violations (first: %s)", nledger, first)
	}
	units := len(s.sess.UnitKeys())
	if units != deterministic {
		return fmt.Errorf("serve: session ledger unbalanced: %d units for %d deterministic outcomes", units, deterministic)
	}
	return nil
}

// Checkpoint writes a consistent snapshot of every chain's learned state
// plus the completed-unit ledger — the session Save path, which acquires
// every chain's commit lock so no checkpoint tears mid-request.
func (s *Server) Checkpoint(w io.Writer) error {
	return s.sess.Save(w)
}
